#include "ds/datagen/tpch.h"

#include <string>

#include "ds/util/random.h"

namespace ds::datagen {

namespace {

using storage::Catalog;
using storage::Column;
using storage::ColumnType;
using storage::Table;
using util::Pcg32;

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",     "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",      "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",     "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",      "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};
// Region of each nation, aligned with kNations.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                            "REG AIR", "SHIP", "TRUCK"};

}  // namespace

Result<std::unique_ptr<Catalog>> GenerateTpch(const TpchOptions& options) {
  if (options.num_customers == 0) {
    return Status::InvalidArgument("num_customers must be positive");
  }
  auto catalog = std::make_unique<Catalog>();
  Pcg32 rng(options.seed);

  const size_t num_customers = options.num_customers;
  const size_t num_orders = num_customers * 10;
  const size_t num_parts = std::max<size_t>(50, num_customers * 2);
  const size_t num_suppliers = std::max<size_t>(10, num_customers / 10);

  // ---- region / nation -------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * region, catalog->CreateTable("region"));
    Column* rk = region->AddColumn("r_regionkey", ColumnType::kInt64).value();
    Column* rn = region->AddColumn("r_name", ColumnType::kCategorical).value();
    for (int i = 0; i < 5; ++i) {
      rk->AppendInt(i);
      rn->AppendString(kRegions[i]);
    }
  }
  {
    DS_ASSIGN_OR_RETURN(Table * nation, catalog->CreateTable("nation"));
    Column* nk = nation->AddColumn("n_nationkey", ColumnType::kInt64).value();
    Column* nn = nation->AddColumn("n_name", ColumnType::kCategorical).value();
    Column* nr = nation->AddColumn("n_regionkey", ColumnType::kInt64).value();
    for (int i = 0; i < 25; ++i) {
      nk->AppendInt(i);
      nn->AppendString(kNations[i]);
      nr->AppendInt(kNationRegion[i]);
    }
  }

  // ---- supplier ---------------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * supplier, catalog->CreateTable("supplier"));
    Column* sk = supplier->AddColumn("s_suppkey", ColumnType::kInt64).value();
    Column* sn = supplier->AddColumn("s_nationkey", ColumnType::kInt64).value();
    Column* sb = supplier->AddColumn("s_acctbal", ColumnType::kFloat64).value();
    for (size_t i = 0; i < num_suppliers; ++i) {
      sk->AppendInt(static_cast<int64_t>(i + 1));
      sn->AppendInt(rng.UniformInt(0, 24));
      sb->AppendDouble(rng.UniformDouble(-999.99, 9999.99));
    }
  }

  // ---- customer ---------------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * customer, catalog->CreateTable("customer"));
    Column* ck = customer->AddColumn("c_custkey", ColumnType::kInt64).value();
    Column* cn = customer->AddColumn("c_nationkey", ColumnType::kInt64).value();
    Column* cm =
        customer->AddColumn("c_mktsegment", ColumnType::kCategorical).value();
    Column* cb = customer->AddColumn("c_acctbal", ColumnType::kFloat64).value();
    for (size_t i = 0; i < num_customers; ++i) {
      ck->AppendInt(static_cast<int64_t>(i + 1));
      cn->AppendInt(rng.UniformInt(0, 24));
      cm->AppendString(kSegments[rng.Bounded(5)]);
      cb->AppendDouble(rng.UniformDouble(-999.99, 9999.99));
    }
  }

  // ---- part --------------------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * part, catalog->CreateTable("part"));
    Column* pk = part->AddColumn("p_partkey", ColumnType::kInt64).value();
    Column* ps = part->AddColumn("p_size", ColumnType::kInt64).value();
    Column* pb = part->AddColumn("p_brand", ColumnType::kCategorical).value();
    Column* pc =
        part->AddColumn("p_container", ColumnType::kCategorical).value();
    Column* pp =
        part->AddColumn("p_retailprice", ColumnType::kFloat64).value();
    static const char* kContainerSize[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
    static const char* kContainerType[] = {"CASE", "BOX", "BAG", "JAR", "PKG",
                                           "PACK", "CAN", "DRUM"};
    for (size_t i = 0; i < num_parts; ++i) {
      pk->AppendInt(static_cast<int64_t>(i + 1));
      ps->AppendInt(rng.UniformInt(1, 50));
      pb->AppendString("Brand#" + std::to_string(rng.UniformInt(1, 5)) +
                       std::to_string(rng.UniformInt(1, 5)));
      pc->AppendString(std::string(kContainerSize[rng.Bounded(5)]) + " " +
                       kContainerType[rng.Bounded(8)]);
      pp->AppendDouble(900.0 + static_cast<double>((i + 1) % 1000) / 10.0 +
                       100.0 * rng.UniformDouble());
    }
  }

  // ---- orders ------------------------------------------------------------------
  std::vector<int64_t> order_date(num_orders);
  {
    DS_ASSIGN_OR_RETURN(Table * orders, catalog->CreateTable("orders"));
    Column* ok = orders->AddColumn("o_orderkey", ColumnType::kInt64).value();
    Column* oc = orders->AddColumn("o_custkey", ColumnType::kInt64).value();
    Column* od = orders->AddColumn("o_orderdate", ColumnType::kInt64).value();
    Column* op =
        orders->AddColumn("o_orderpriority", ColumnType::kCategorical).value();
    Column* ot =
        orders->AddColumn("o_totalprice", ColumnType::kFloat64).value();
    for (size_t i = 0; i < num_orders; ++i) {
      ok->AppendInt(static_cast<int64_t>(i + 1));
      oc->AppendInt(
          rng.UniformInt(1, static_cast<int64_t>(num_customers)));
      order_date[i] = rng.UniformInt(kTpchMinDate, kTpchMaxDate - 121);
      od->AppendInt(order_date[i]);
      op->AppendString(kPriorities[rng.Bounded(5)]);
      ot->AppendDouble(rng.UniformDouble(857.71, 555285.16));
    }
  }

  // ---- lineitem -----------------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * lineitem, catalog->CreateTable("lineitem"));
    Column* li = lineitem->AddColumn("l_id", ColumnType::kInt64).value();
    Column* lo = lineitem->AddColumn("l_orderkey", ColumnType::kInt64).value();
    Column* lp = lineitem->AddColumn("l_partkey", ColumnType::kInt64).value();
    Column* ls = lineitem->AddColumn("l_suppkey", ColumnType::kInt64).value();
    Column* lq = lineitem->AddColumn("l_quantity", ColumnType::kInt64).value();
    Column* ld = lineitem->AddColumn("l_discount", ColumnType::kFloat64).value();
    Column* lsd = lineitem->AddColumn("l_shipdate", ColumnType::kInt64).value();
    Column* lm =
        lineitem->AddColumn("l_shipmode", ColumnType::kCategorical).value();
    Column* le =
        lineitem->AddColumn("l_extendedprice", ColumnType::kFloat64).value();
    int64_t next_id = 1;
    for (size_t o = 0; o < num_orders; ++o) {
      int64_t n = rng.UniformInt(1, 7);  // TPC-H: 1..7 lineitems per order
      for (int64_t j = 0; j < n; ++j) {
        li->AppendInt(next_id++);
        lo->AppendInt(static_cast<int64_t>(o + 1));
        lp->AppendInt(rng.UniformInt(1, static_cast<int64_t>(num_parts)));
        ls->AppendInt(rng.UniformInt(1, static_cast<int64_t>(num_suppliers)));
        lq->AppendInt(rng.UniformInt(1, 50));
        ld->AppendDouble(static_cast<double>(rng.UniformInt(0, 10)) / 100.0);
        // Ship within ~4 months of the order date (the one mild
        // correlation TPC-H itself mandates).
        lsd->AppendInt(order_date[o] + rng.UniformInt(1, 121));
        lm->AppendString(kShipModes[rng.Bounded(7)]);
        le->AppendDouble(rng.UniformDouble(900.0, 105000.0));
      }
    }
  }

  // ---- keys -----------------------------------------------------------------------
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("region", "r_regionkey"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("nation", "n_nationkey"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("supplier", "s_suppkey"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("customer", "c_custkey"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("part", "p_partkey"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("orders", "o_orderkey"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("lineitem", "l_id"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("nation", "n_regionkey", "region", "r_regionkey"));
  DS_RETURN_NOT_OK(catalog->AddForeignKey("supplier", "s_nationkey", "nation",
                                          "n_nationkey"));
  DS_RETURN_NOT_OK(catalog->AddForeignKey("customer", "c_nationkey", "nation",
                                          "n_nationkey"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("orders", "o_custkey", "customer", "c_custkey"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("lineitem", "l_partkey", "part", "p_partkey"));
  DS_RETURN_NOT_OK(catalog->AddForeignKey("lineitem", "l_suppkey", "supplier",
                                          "s_suppkey"));

  DS_RETURN_NOT_OK(catalog->Validate());
  return catalog;
}

}  // namespace ds::datagen

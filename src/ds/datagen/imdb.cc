#include "ds/datagen/imdb.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "ds/util/random.h"

namespace ds::datagen {

namespace {

using storage::Catalog;
using storage::Column;
using storage::ColumnType;
using storage::Table;
using util::Pcg32;
using util::ZipfDistribution;

// Per-keyword popularity profile: a peak year and spread driving the
// keyword ⨯ production_year correlation.
struct KeywordProfile {
  double peak_year;
  double spread;
};

// Geometric-ish fan-out: 1 + number of failures before success, capped.
size_t FanOut(Pcg32* rng, double mean, size_t cap) {
  const double p = 1.0 / mean;
  size_t n = 1;
  while (n < cap && !rng->Chance(p)) ++n;
  return n;
}

// Draws a production year: mixture of a thin uniform floor and a strong
// bias towards recent decades (as in the real IMDb).
int64_t SampleYear(Pcg32* rng) {
  if (rng->Chance(0.12)) {
    return rng->UniformInt(kImdbMinYear, kImdbMaxYear);
  }
  // Mass concentrated towards the max year (u^(1/3) mapping).
  double u = std::pow(rng->UniformDouble(), 1.0 / 3.0);
  int64_t span = kImdbMaxYear - kImdbMinYear;
  return kImdbMinYear + static_cast<int64_t>(u * static_cast<double>(span));
}

std::string MakeKeywordString(size_t i) {
  // Deterministic readable keywords; a few named ones exist at fixed ranks
  // so examples can query them ("artificial-intelligence" is rank 3).
  static const char* kNamed[] = {
      "based-on-novel",  "murder",       "independent-film",
      "artificial-intelligence", "love", "female-nudity",
      "character-name-in-title", "revenge", "sequel", "robot",
  };
  if (i < sizeof(kNamed) / sizeof(kNamed[0])) return kNamed[i];
  return "keyword-" + std::to_string(i);
}

std::string MakeCompanyString(size_t i) {
  static const char* kNamed[] = {
      "warner-bros", "universal-pictures", "columbia-pictures",
      "paramount",   "twentieth-century-fox",
  };
  if (i < sizeof(kNamed) / sizeof(kNamed[0])) return kNamed[i];
  return "company-" + std::to_string(i);
}

const char* kCountryCodes[] = {"[us]", "[gb]", "[de]", "[fr]", "[jp]",
                               "[in]", "[it]", "[ca]", "[es]", "[se]"};
constexpr size_t kNumCountries = sizeof(kCountryCodes) / sizeof(kCountryCodes[0]);

}  // namespace

Result<std::unique_ptr<Catalog>> GenerateImdb(const ImdbOptions& options) {
  if (options.num_titles == 0) {
    return Status::InvalidArgument("num_titles must be positive");
  }
  if (options.correlation < 0 || options.correlation > 1) {
    return Status::InvalidArgument("correlation must be in [0, 1]");
  }
  auto catalog = std::make_unique<Catalog>();
  Pcg32 rng(options.seed);

  const size_t num_titles = options.num_titles;
  const size_t num_keywords = std::max<size_t>(
      20, static_cast<size_t>(static_cast<double>(num_titles) / 5.0 *
                              options.dimension_scale));
  const size_t num_companies = std::max<size_t>(
      10, static_cast<size_t>(static_cast<double>(num_titles) / 10.0 *
                              options.dimension_scale));

  // ---- keyword -------------------------------------------------------------
  std::vector<KeywordProfile> kw_profiles(num_keywords);
  {
    DS_ASSIGN_OR_RETURN(Table * keyword, catalog->CreateTable("keyword"));
    Column* id = keyword->AddColumn("id", ColumnType::kInt64).value();
    Column* kw = keyword->AddColumn("keyword", ColumnType::kCategorical).value();
    Column* pc =
        keyword->AddColumn("phonetic_code", ColumnType::kCategorical).value();
    for (size_t i = 0; i < num_keywords; ++i) {
      id->AppendInt(static_cast<int64_t>(i + 1));
      kw->AppendString(MakeKeywordString(i));
      std::string code = "P";
      code += std::to_string(i % 26);
      pc->AppendString(code);
      kw_profiles[i].peak_year =
          static_cast<double>(rng.UniformInt(1930, kImdbMaxYear));
      kw_profiles[i].spread = rng.UniformDouble(2.0, 10.0);
    }
  }

  // ---- company_name ----------------------------------------------------------
  // Each company has an era affinity (mean active year) and a home country
  // correlated with its era bucket.
  std::vector<double> company_era(num_companies);
  {
    DS_ASSIGN_OR_RETURN(Table * cn, catalog->CreateTable("company_name"));
    Column* id = cn->AddColumn("id", ColumnType::kInt64).value();
    Column* name = cn->AddColumn("name", ColumnType::kCategorical).value();
    Column* cc =
        cn->AddColumn("country_code", ColumnType::kCategorical).value();
    for (size_t i = 0; i < num_companies; ++i) {
      id->AppendInt(static_cast<int64_t>(i + 1));
      name->AppendString(MakeCompanyString(i));
      company_era[i] = static_cast<double>(rng.UniformInt(1930, kImdbMaxYear));
      // Country correlates with era: older companies skew [us]/[gb],
      // newer ones spread over all countries.
      size_t country;
      if (company_era[i] < 1975 && rng.Chance(0.7)) {
        country = rng.Bounded(2);  // us / gb
      } else {
        country = rng.Bounded(kNumCountries);
      }
      cc->AppendString(kCountryCodes[country]);
    }
  }

  // ---- title ---------------------------------------------------------------
  std::vector<int64_t> title_year(num_titles);
  std::vector<int64_t> title_kind(num_titles);
  // Per-title popularity: one heavy-tailed factor drives the fan-out of
  // *every* fact table (blockbusters have more keywords AND more cast AND
  // more info rows). This joint fan-out correlation is what makes multi-join
  // cardinalities deviate wildly from per-join independence — the central
  // difficulty of the real IMDb that estimators relying on independent join
  // selectivities cannot see.
  std::vector<double> title_pop(num_titles);
  {
    DS_ASSIGN_OR_RETURN(Table * title, catalog->CreateTable("title"));
    Column* id = title->AddColumn("id", ColumnType::kInt64).value();
    Column* kind = title->AddColumn("kind_id", ColumnType::kInt64).value();
    Column* year =
        title->AddColumn("production_year", ColumnType::kInt64).value();
    Column* season = title->AddColumn("season_nr", ColumnType::kInt64).value();
    Column* episode =
        title->AddColumn("episode_nr", ColumnType::kInt64).value();
    for (size_t i = 0; i < num_titles; ++i) {
      id->AppendInt(static_cast<int64_t>(i + 1));
      int64_t y = SampleYear(&rng);
      title_year[i] = y;
      // Kind correlates strongly with year: episodes/series dominate recent
      // years and barely exist before the TV era.
      int64_t k;
      if (y >= 1985 && rng.Chance(0.65)) {
        k = rng.Chance(0.7) ? 7 : 2;  // episode, tv series
      } else if (y < 1985 && rng.Chance(0.9)) {
        k = rng.UniformInt(1, 4);  // movie, video, ...
      } else {
        k = rng.UniformInt(1, kImdbNumKinds);
      }
      title_kind[i] = k;
      kind->AppendInt(k);
      year->AppendInt(y);
      // Popularity: Pareto tail, boosted for recent titles, damped for
      // episodes (an individual episode is rarely a blockbuster). Fan-outs
      // below scale with pop^0.7, which keeps the joint correlation strong
      // while bounding the product of fan-outs across four fact tables.
      double pop = std::min(
          40.0, std::pow(1.0 - rng.UniformDouble(), -1.0 / 1.2));
      if (y >= 1990) pop *= 1.5;
      if (k == 7) pop = std::min(pop, 4.0);
      title_pop[i] = std::pow(pop, 0.7);
      if (k == 7) {  // episodes carry season/episode numbers
        season->AppendInt(rng.UniformInt(1, 25));
        episode->AppendInt(rng.UniformInt(1, 300));
      } else {
        season->AppendNull();
        episode->AppendNull();
      }
    }
  }

  // ---- movie_keyword ---------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * mk, catalog->CreateTable("movie_keyword"));
    Column* id = mk->AddColumn("id", ColumnType::kInt64).value();
    Column* movie_id = mk->AddColumn("movie_id", ColumnType::kInt64).value();
    Column* keyword_id =
        mk->AddColumn("keyword_id", ColumnType::kInt64).value();
    ZipfDistribution kw_zipf(num_keywords, options.zipf_skew);
    int64_t next_id = 1;
    for (size_t i = 0; i < num_titles; ++i) {
      // Coverage: most old titles and many episodes are untagged. Partial,
      // correlated coverage is what makes per-join independence fail.
      double coverage = title_year[i] >= 1990   ? 0.8
                        : title_year[i] >= 1960 ? 0.45
                                                : 0.2;
      if (title_kind[i] == 7) coverage *= 0.5;
      if (!rng.Chance(coverage)) continue;
      // Keyword fan-out follows the title's popularity (heavy-tailed).
      size_t n = static_cast<size_t>(std::clamp(
          title_pop[i] * 1.3 * rng.UniformDouble(0.6, 1.4), 1.0, 40.0));
      for (size_t j = 0; j < n; ++j) {
        size_t kw = 0;
        if (rng.Chance(options.correlation)) {
          // Peak-year sampling: rejection against the keyword's profile.
          bool accepted = false;
          for (int attempt = 0; attempt < 12; ++attempt) {
            size_t cand = kw_zipf.Sample(&rng);
            double d = (static_cast<double>(title_year[i]) -
                        kw_profiles[cand].peak_year) /
                       kw_profiles[cand].spread;
            if (rng.UniformDouble() < std::exp(-0.5 * d * d)) {
              kw = cand;
              accepted = true;
              break;
            }
          }
          if (!accepted) kw = kw_zipf.Sample(&rng);
        } else {
          kw = kw_zipf.Sample(&rng);
        }
        id->AppendInt(next_id++);
        movie_id->AppendInt(static_cast<int64_t>(i + 1));
        keyword_id->AppendInt(static_cast<int64_t>(kw + 1));
      }
    }
  }

  // ---- movie_companies --------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * mc, catalog->CreateTable("movie_companies"));
    Column* id = mc->AddColumn("id", ColumnType::kInt64).value();
    Column* movie_id = mc->AddColumn("movie_id", ColumnType::kInt64).value();
    Column* company_id =
        mc->AddColumn("company_id", ColumnType::kInt64).value();
    Column* ctype =
        mc->AddColumn("company_type_id", ColumnType::kInt64).value();
    ZipfDistribution company_zipf(num_companies, options.zipf_skew);
    int64_t next_id = 1;
    for (size_t i = 0; i < num_titles; ++i) {
      double coverage = title_year[i] >= 1990 ? 0.7 : 0.4;
      if (title_kind[i] == 7) coverage *= 0.4;
      if (!rng.Chance(coverage)) continue;
      size_t n = static_cast<size_t>(std::clamp(
          1.0 + title_pop[i] * 0.3 * rng.UniformDouble(0.5, 1.5), 1.0, 8.0));
      for (size_t j = 0; j < n; ++j) {
        // Companies work in their era: rejection against era distance.
        size_t comp = company_zipf.Sample(&rng);
        if (rng.Chance(options.correlation)) {
          for (int attempt = 0; attempt < 8; ++attempt) {
            double d =
                (static_cast<double>(title_year[i]) - company_era[comp]) / 10.0;
            if (rng.UniformDouble() < std::exp(-0.5 * d * d)) break;
            comp = company_zipf.Sample(&rng);
          }
        }
        id->AppendInt(next_id++);
        movie_id->AppendInt(static_cast<int64_t>(i + 1));
        company_id->AppendInt(static_cast<int64_t>(comp + 1));
        // type 1 = production (more common), 2 = distribution.
        ctype->AppendInt(rng.Chance(0.7) ? 1 : 2);
      }
    }
  }

  // ---- cast_info ----------------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * ci, catalog->CreateTable("cast_info"));
    Column* id = ci->AddColumn("id", ColumnType::kInt64).value();
    Column* movie_id = ci->AddColumn("movie_id", ColumnType::kInt64).value();
    Column* person_id = ci->AddColumn("person_id", ColumnType::kInt64).value();
    Column* role_id = ci->AddColumn("role_id", ColumnType::kInt64).value();
    const int64_t num_persons =
        std::max<int64_t>(100, static_cast<int64_t>(num_titles) * 2);
    int64_t next_id = 1;
    for (size_t i = 0; i < num_titles; ++i) {
      double coverage = title_year[i] >= 1980 ? 0.9 : 0.5;
      if (!rng.Chance(coverage)) continue;
      // Cast size scales with popularity; episodes list a few actors.
      size_t n = static_cast<size_t>(std::clamp(
          title_pop[i] * 2.5 * rng.UniformDouble(0.6, 1.4), 1.0, 60.0));
      for (size_t j = 0; j < n; ++j) {
        id->AppendInt(next_id++);
        movie_id->AppendInt(static_cast<int64_t>(i + 1));
        person_id->AppendInt(rng.UniformInt(1, num_persons));
        // Role depends on kind and era: episodes are actor-heavy; old
        // titles credit mostly crew roles (the correlation breaks the
        // independence assumption for role ⨯ year conjunctions).
        int64_t role;
        if (title_kind[i] == 7 && rng.Chance(0.85)) {
          role = rng.Chance(0.5) ? 1 : 2;  // actor / actress
        } else if (title_year[i] < 1950 && rng.Chance(0.6)) {
          role = rng.UniformInt(8, kImdbNumRoles);  // crew-heavy
        } else {
          role = rng.UniformInt(1, kImdbNumRoles);
        }
        role_id->AppendInt(role);
      }
    }
  }

  // ---- movie_info -----------------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * mi, catalog->CreateTable("movie_info"));
    Column* id = mi->AddColumn("id", ColumnType::kInt64).value();
    Column* movie_id = mi->AddColumn("movie_id", ColumnType::kInt64).value();
    Column* info_type =
        mi->AddColumn("info_type_id", ColumnType::kInt64).value();
    ZipfDistribution it_zipf(static_cast<size_t>(kImdbNumInfoTypes), 0.8);
    int64_t next_id = 1;
    for (size_t i = 0; i < num_titles; ++i) {
      double coverage = title_year[i] >= 1970 ? 0.75 : 0.45;
      if (!rng.Chance(coverage)) continue;
      size_t n = static_cast<size_t>(std::clamp(
          title_pop[i] * 1.0 * rng.UniformDouble(0.6, 1.4), 1.0, 30.0));
      for (size_t j = 0; j < n; ++j) {
        id->AppendInt(next_id++);
        movie_id->AppendInt(static_cast<int64_t>(i + 1));
        // Info types drift with era: shift the Zipf rank window by decade.
        int64_t base = static_cast<int64_t>(it_zipf.Sample(&rng));
        if (rng.Chance(options.correlation)) {
          base = (base + (title_year[i] - kImdbMinYear) / 8) %
                 kImdbNumInfoTypes;
        }
        info_type->AppendInt(base + 1);
      }
    }
  }

  // ---- movie_info_idx -----------------------------------------------------------
  {
    DS_ASSIGN_OR_RETURN(Table * mi_idx, catalog->CreateTable("movie_info_idx"));
    Column* id = mi_idx->AddColumn("id", ColumnType::kInt64).value();
    Column* movie_id = mi_idx->AddColumn("movie_id", ColumnType::kInt64).value();
    Column* info_type =
        mi_idx->AddColumn("info_type_id", ColumnType::kInt64).value();
    int64_t next_id = 1;
    for (size_t i = 0; i < num_titles; ++i) {
      // Only "notable" (popular) titles are rated/ranked at all.
      double coverage = title_year[i] >= 1980 ? 0.35 : 0.15;
      coverage *= std::min(2.5, 0.5 + title_pop[i] * 0.25);
      if (title_kind[i] == 7) coverage *= 0.5;
      if (!rng.Chance(std::min(coverage, 0.95))) continue;
      size_t n = FanOut(&rng, 1.5, 6);
      for (size_t j = 0; j < n; ++j) {
        id->AppendInt(next_id++);
        movie_id->AppendInt(static_cast<int64_t>(i + 1));
        // Ratings (info type 101) dominate for well-known (recent) titles.
        int64_t it;
        if (title_year[i] >= 1980 && rng.Chance(0.65)) {
          it = 101;
        } else {
          it = rng.UniformInt(kImdbMinIdxInfoType, kImdbMaxIdxInfoType);
        }
        info_type->AppendInt(it);
      }
    }
  }

  // ---- keys -----------------------------------------------------------------------
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("title", "id"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("keyword", "id"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("company_name", "id"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("movie_keyword", "id"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("movie_companies", "id"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("cast_info", "id"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("movie_info", "id"));
  DS_RETURN_NOT_OK(catalog->SetPrimaryKey("movie_info_idx", "id"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("movie_keyword", "movie_id", "title", "id"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("movie_keyword", "keyword_id", "keyword", "id"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("movie_companies", "movie_id", "title", "id"));
  DS_RETURN_NOT_OK(catalog->AddForeignKey("movie_companies", "company_id",
                                          "company_name", "id"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("cast_info", "movie_id", "title", "id"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("movie_info", "movie_id", "title", "id"));
  DS_RETURN_NOT_OK(
      catalog->AddForeignKey("movie_info_idx", "movie_id", "title", "id"));

  DS_RETURN_NOT_OK(catalog->Validate());
  return catalog;
}

}  // namespace ds::datagen

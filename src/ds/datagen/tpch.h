// Synthetic TPC-H subset generator.
//
// The demo offers TPC-H as its second dataset. TPC-H data is (by spec)
// mostly uniform and independent, which makes it the easy contrast case to
// the correlated IMDb: traditional estimators do fine here and the learned
// sketch should too. We generate the seven tables that the classic
// PK/FK join paths use, at a configurable micro scale.
//
// Schema:
//   region(r_regionkey, r_name)
//   nation(n_nationkey, n_name, n_regionkey→region)
//   supplier(s_suppkey, s_nationkey→nation, s_acctbal)
//   customer(c_custkey, c_nationkey→nation, c_mktsegment, c_acctbal)
//   part(p_partkey, p_size, p_brand, p_container, p_retailprice)
//   orders(o_orderkey, o_custkey→customer, o_orderdate, o_orderpriority,
//          o_totalprice)
//   lineitem(l_id, l_orderkey→orders, l_partkey→part, l_suppkey→supplier,
//            l_quantity, l_discount, l_shipdate, l_shipmode,
//            l_extendedprice)
//
// Dates are encoded as integer days since 1992-01-01 (range [0, 2405]).

#ifndef DS_DATAGEN_TPCH_H_
#define DS_DATAGEN_TPCH_H_

#include <cstdint>
#include <memory>

#include "ds/storage/catalog.h"

namespace ds::datagen {

struct TpchOptions {
  /// Rows in `customer`; orders ≈ 10x, lineitem ≈ 40x, part ≈ 2x,
  /// supplier ≈ 0.1x — the TPC-H table-size ratios at micro scale.
  size_t num_customers = 3'000;

  uint64_t seed = 7;
};

Result<std::unique_ptr<storage::Catalog>> GenerateTpch(
    const TpchOptions& options);

/// Encoded date range (days since 1992-01-01).
inline constexpr int64_t kTpchMinDate = 0;
inline constexpr int64_t kTpchMaxDate = 2405;

}  // namespace ds::datagen

#endif  // DS_DATAGEN_TPCH_H_

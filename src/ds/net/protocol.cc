#include "ds/net/protocol.h"

#include <cstring>

namespace ds::net {

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kStats);
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kError:
      return "error";
    case WireStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

namespace {

template <typename T>
void AppendLE(std::string* out, T v) {
  // The build targets little-endian machines (x86-64/aarch64); memcpy of
  // the native representation IS the wire representation there, and the
  // compiler folds this to a plain store.
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out->append(bytes, sizeof(T));
}

}  // namespace

void AppendU16(std::string* out, uint16_t v) { AppendLE(out, v); }
void AppendU32(std::string* out, uint32_t v) { AppendLE(out, v); }
void AppendU64(std::string* out, uint64_t v) { AppendLE(out, v); }
void AppendF64(std::string* out, double v) { AppendLE(out, v); }

void AppendString16(std::string* out, std::string_view s) {
  AppendU16(out, static_cast<uint16_t>(s.size()));
  out->append(s.data(), s.size());
}

void AppendString32(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ByteReader::Take(size_t n, const char** p) {
  if (remaining() < n) return false;
  *p = data_.data() + off_;
  off_ += n;
  return true;
}

bool ByteReader::ReadU8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  std::memcpy(v, p, 1);
  return true;
}

bool ByteReader::ReadU16(uint16_t* v) {
  const char* p;
  if (!Take(2, &p)) return false;
  std::memcpy(v, p, 2);
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  std::memcpy(v, p, 4);
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  std::memcpy(v, p, 8);
  return true;
}

bool ByteReader::ReadF64(double* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  std::memcpy(v, p, 8);
  return true;
}

bool ByteReader::ReadString16(std::string* s) {
  uint16_t len;
  if (!ReadU16(&len)) return false;
  const char* p;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

bool ByteReader::ReadString32(std::string* s) {
  uint32_t len;
  if (!ReadU32(&len)) return false;
  const char* p;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

void AppendFrame(std::string* out, FrameType type, WireStatus status,
                 uint64_t request_id, std::string_view payload,
                 uint16_t flags) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(type));
  out->push_back(static_cast<char>(status));
  AppendU16(out, flags);
  AppendU64(out, request_id);
  out->append(payload.data(), payload.size());
}

void AppendTraceContext(std::string* payload, uint64_t trace_id,
                        uint64_t parent_span) {
  AppendU64(payload, trace_id);
  AppendU64(payload, parent_span);
}

Status ConsumeTraceContext(uint16_t flags, std::string_view* payload,
                           uint64_t* trace_id, uint64_t* parent_span) {
  *trace_id = 0;
  *parent_span = 0;
  if ((flags & kFlagTraceContext) == 0) return Status::OK();
  if (payload->size() < kTraceContextSize) {
    return Status::ParseError(
        "trace-context flag set but payload is too short");
  }
  std::memcpy(trace_id, payload->data(), 8);
  std::memcpy(parent_span, payload->data() + 8, 8);
  payload->remove_prefix(kTraceContextSize);
  return Status::OK();
}

Status DecodeFrameHeader(const char* data, FrameHeader* out) {
  std::memcpy(&out->payload_size, data, 4);
  const uint8_t type = static_cast<uint8_t>(data[4]);
  const uint8_t status = static_cast<uint8_t>(data[5]);
  std::memcpy(&out->flags, data + 6, 2);
  std::memcpy(&out->request_id, data + 8, 8);
  if (!IsKnownFrameType(type)) {
    return Status::ParseError("unknown frame type " + std::to_string(type));
  }
  if (status > static_cast<uint8_t>(WireStatus::kRejected)) {
    return Status::ParseError("unknown frame status " +
                              std::to_string(status));
  }
  if ((out->flags & ~kKnownFlags) != 0) {
    return Status::ParseError("unknown reserved frame flag bits");
  }
  if (out->payload_size > kMaxPayloadBytes) {
    return Status::OutOfRange("frame payload of " +
                              std::to_string(out->payload_size) +
                              " bytes exceeds the " +
                              std::to_string(kMaxPayloadBytes) + " cap");
  }
  out->type = static_cast<FrameType>(type);
  out->status = static_cast<WireStatus>(status);
  return Status::OK();
}

void AppendEstimateRequest(std::string* payload, const EstimateRequest& req) {
  AppendString16(payload, req.sketch);
  AppendString32(payload, req.sql);
}

Status ParseEstimateRequest(std::string_view payload, EstimateRequest* out) {
  ByteReader r(payload);
  if (!r.ReadString16(&out->sketch) || !r.ReadString32(&out->sql) ||
      !r.empty()) {
    return Status::ParseError("malformed ESTIMATE payload");
  }
  return Status::OK();
}

void AppendEstimateBatchRequest(std::string* payload,
                                const EstimateBatchRequest& req) {
  AppendString16(payload, req.sketch);
  AppendU32(payload, static_cast<uint32_t>(req.sqls.size()));
  for (const std::string& sql : req.sqls) AppendString32(payload, sql);
}

Status ParseEstimateBatchRequest(std::string_view payload,
                                 EstimateBatchRequest* out) {
  ByteReader r(payload);
  uint32_t count;
  if (!r.ReadString16(&out->sketch) || !r.ReadU32(&count)) {
    return Status::ParseError("malformed ESTIMATE_BATCH payload");
  }
  // The count is attacker-controlled; each statement needs at least its
  // 4-byte length prefix, so `remaining / 4` bounds any honest count and
  // the reserve below cannot be inflated past the actual payload.
  if (count > r.remaining() / 4 + 1) {
    return Status::ParseError("ESTIMATE_BATCH count exceeds payload");
  }
  out->sqls.clear();
  out->sqls.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string sql;
    if (!r.ReadString32(&sql)) {
      return Status::ParseError("truncated ESTIMATE_BATCH statement");
    }
    out->sqls.push_back(std::move(sql));
  }
  if (!r.empty()) {
    return Status::ParseError("trailing bytes after ESTIMATE_BATCH payload");
  }
  return Status::OK();
}

void AppendBatchItem(std::string* payload, const Result<double>& result) {
  if (result.ok()) {
    payload->push_back(1);
    AppendF64(payload, *result);
  } else {
    payload->push_back(0);
    AppendString32(payload, result.status().message());
  }
}

Status ParseBatchResponse(std::string_view payload,
                          std::vector<Result<double>>* out) {
  ByteReader r(payload);
  uint32_t count;
  if (!r.ReadU32(&count)) {
    return Status::ParseError("malformed batch response");
  }
  if (count > r.remaining() + 1) {
    return Status::ParseError("batch response count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t ok;
    if (!r.ReadU8(&ok)) {
      return Status::ParseError("truncated batch response item");
    }
    if (ok != 0) {
      double value;
      if (!r.ReadF64(&value)) {
        return Status::ParseError("truncated batch response value");
      }
      out->push_back(value);
    } else {
      std::string message;
      if (!r.ReadString32(&message)) {
        return Status::ParseError("truncated batch response error");
      }
      out->push_back(Status::Internal(std::move(message)));
    }
  }
  if (!r.empty()) {
    return Status::ParseError("trailing bytes after batch response");
  }
  return Status::OK();
}

}  // namespace ds::net

// Single-threaded epoll event loop — the execution engine under each
// ds::net worker thread.
//
// One EventLoop is owned and Run() by exactly one thread. File descriptors
// are registered with a callback; when epoll reports readiness the loop
// invokes the callback with the event mask. Registration is edge- or
// level-triggered per fd (the caller passes EPOLLET itself): connections
// run edge-triggered (drain until EAGAIN, no re-arm syscalls), listening
// sockets run level-triggered so a backlog the last accept sweep did not
// drain re-notifies.
//
// Cross-thread input arrives only through Post(): a task queue drained on
// the loop thread, woken via an eventfd. That is the entire thread
// contract — Add/Modify/Remove and the callbacks themselves happen on the
// loop thread only, so handler state needs no locks.
//
// Non-Linux builds compile this header but Init() returns Unimplemented;
// the networked front-end is a Linux subsystem (epoll/eventfd), everything
// else in the repo stays portable.

#ifndef DS_NET_EVENT_LOOP_H_
#define DS_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ds/obs/metrics.h"
#include "ds/util/fd.h"
#include "ds/util/status.h"
#include "ds/util/thread_annotations.h"

namespace ds::net {

class EventLoop {
 public:
  /// Invoked on the loop thread with the epoll event mask (EPOLLIN,
  /// EPOLLOUT, EPOLLHUP, ...). The callback may Remove() its own fd.
  using IoCallback = std::function<void(uint32_t events)>;

  EventLoop() = default;
  ~EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd. Must be called
  /// before anything else; Unimplemented off Linux.
  Status Init();

  /// Registers `fd` (not owned) for `events`. Loop thread only (or before
  /// Run() starts).
  Status Add(int fd, uint32_t events, IoCallback callback);

  /// Changes the interest mask of a registered fd. Loop thread only.
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`; pending events already dequeued for it are dropped.
  /// Loop thread only. The fd itself stays open (callers own their fds).
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread and wakes the loop. Safe
  /// from any thread, including after Stop() — tasks posted to a stopped
  /// loop are silently dropped (the loop's owner is tearing down).
  void Post(std::function<void()> task);

  /// Dispatches until Stop(). Runs on the owning thread.
  void Run();

  /// Asks Run() to return after the current dispatch round. Any thread.
  void Stop();

  /// Optional per-loop instruments (borrowed; wire up before Run()).
  /// `wakeups` counts epoll_wait returns — the loop's scheduling rate;
  /// `lag_us` records each posted task's Post()-to-execution delay in
  /// microseconds — the loop-lag signal a stalled handler shows up in.
  void SetMetrics(obs::Counter* wakeups, obs::Histogram* lag_us) {
    wakeups_ = wakeups;
    lag_us_ = lag_us;
  }

  size_t num_registered_fds() const { return handlers_.size(); }

 private:
  struct PostedTask {
    int64_t posted_us = 0;
    std::function<void()> fn;
  };

  void Wake();
  void DrainWakeFd();
  void RunPostedTasks();

  util::UniqueFd epoll_fd_;
  util::UniqueFd wake_fd_;
  obs::Counter* wakeups_ = nullptr;    // not owned
  obs::Histogram* lag_us_ = nullptr;   // not owned

  // fd -> callback. shared_ptr so a callback that Remove()s its own fd
  // (closing a connection from inside its handler) does not free the
  // std::function currently executing.
  std::unordered_map<int, std::shared_ptr<IoCallback>> handlers_;

  util::Mutex mu_{util::LockRank::kNetEventLoopTasks};
  std::vector<PostedTask> tasks_ DS_GUARDED_BY(mu_);
  bool stopped_ DS_GUARDED_BY(mu_) = false;
};

}  // namespace ds::net

#endif  // DS_NET_EVENT_LOOP_H_

// NetClient: a blocking client for the ds::net binary protocol.
//
// Used by the networked loadgen mode, dsctl, and the integration tests.
// One client owns one TCP connection; the magic preamble is sent at
// connect time, so the first frame can follow immediately.
//
// Two usage styles:
//
//   Synchronous (one request in flight):
//     auto client = NetClient::Connect("127.0.0.1", port);
//     auto estimate = client->Estimate("imdb", "SELECT ...");
//
//   Pipelined (the loadgen's closed loop with depth > 1):
//     client->SendEstimate(id, sketch, sql);   // repeat, distinct ids
//     auto resp = client->ReadResponse();      // match resp->request_id
//
// A client is NOT thread-safe: one thread per connection (the intended
// loadgen topology) or external locking.
//
// Rejected responses surface as Status::OutOfRange from the synchronous
// calls, and as WireStatus::kRejected on pipelined Response records — the
// caller decides whether shed is an error or an expected overload outcome.

#ifndef DS_NET_CLIENT_H_
#define DS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ds/net/protocol.h"
#include "ds/obs/trace.h"
#include "ds/util/fd.h"
#include "ds/util/status.h"

namespace ds::net {

class NetClient {
 public:
  /// One decoded response frame, for the pipelined API.
  struct Response {
    uint64_t request_id = 0;
    FrameType type = FrameType::kPing;
    WireStatus status = WireStatus::kOk;
    double value = 0.0;       // valid when type==kEstimate && status==kOk
    std::string message;      // error/rejection message, or raw payload
  };

  /// Connects over TCP (IPv4) and sends the protocol magic.
  static Result<NetClient> Connect(const std::string& host, uint16_t port);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Installs a trace recorder (borrowed; null switches tracing off).
  /// Every later Estimate / EstimateBatch / SendEstimate runs the
  /// recorder's sampling decision; a sampled request records a
  /// client_estimate span here AND ships its context on the wire behind
  /// kFlagTraceContext, so the server's spans land in the same trace.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }
  obs::TraceRecorder* tracer() const { return tracer_; }

  /// Identifies this connection's tenant for admission control.
  Status Hello(std::string_view tenant);

  /// Round-trips an empty frame (liveness / latency floor check).
  Status Ping();

  /// One estimate, blocking. kRejected maps to Status::OutOfRange,
  /// kError to Status::Internal carrying the server's message.
  Result<double> Estimate(std::string_view sketch, std::string_view sql);

  /// One batch, blocking. `out` gets one Result per statement, in order.
  Status EstimateBatch(std::string_view sketch,
                       const std::vector<std::string>& sqls,
                       std::vector<Result<double>>* out);

  /// The server's JSON metrics snapshot.
  Result<std::string> Stats();

  // ---- Pipelined API --------------------------------------------------------

  /// Writes one ESTIMATE frame without waiting for the response. Pair with
  /// ReadResponse(); use distinct request ids to match them up.
  Status SendEstimate(uint64_t request_id, std::string_view sketch,
                      std::string_view sql);

  /// Blocks for the next response frame (any type, any id).
  Result<Response> ReadResponse();

  bool connected() const { return fd_.valid(); }

 private:
  /// A sampled request's client-side span, open until its response.
  struct PendingTrace {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    int64_t start_us = 0;
  };

  explicit NetClient(util::UniqueFd fd) : fd_(std::move(fd)) {}

  Status WriteAll(std::string_view bytes);
  /// Reads one complete frame (header + payload) into *header / *payload.
  Status ReadFrame(FrameHeader* header, std::string* payload);
  /// Sends `payload` as a frame of `type` and reads one response frame,
  /// which must echo `request_id` and match `type`.
  Status RoundTrip(FrameType type, uint64_t request_id,
                   std::string_view payload, FrameHeader* resp_header,
                   std::string* resp_payload, uint16_t flags = 0);
  /// Sampling decision + span-id allocation for one outgoing request.
  /// Returns an unsampled (trace_id 0) record when tracing is off.
  PendingTrace BeginTrace();
  /// Records the client_estimate span for a sampled request.
  void FinishTrace(const PendingTrace& trace, uint64_t value);

  util::UniqueFd fd_;
  std::string rbuf_;  // bytes past the frame ReadFrame last returned
  uint64_t next_id_ = 1;
  obs::TraceRecorder* tracer_ = nullptr;  // not owned
  /// request id -> open span, for the pipelined API (SendEstimate opens,
  /// ReadResponse closes).
  std::unordered_map<uint64_t, PendingTrace> pending_traces_;
};

/// Minimal blocking HTTP/1.1 GET ("Connection: close") against the
/// server's admin plane — what `dsctl top` and `dsctl trace export` use.
/// Extra request headers are (name, value) pairs. Returns the response
/// body on 2xx, an error Status carrying the status code otherwise.
Result<std::string> HttpGet(
    const std::string& host, uint16_t port, const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers = {});

}  // namespace ds::net

#endif  // DS_NET_CLIENT_H_

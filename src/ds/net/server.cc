#include "ds/net/server.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "ds/net/event_loop.h"
#include "ds/net/http.h"
#include "ds/obs/export.h"
#include "ds/obs/exposition.h"
#include "ds/obs/trace.h"
#include "ds/util/build_info.h"
#include "ds/util/cpu_topology.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace ds::net {

NetMetrics::NetMetrics(obs::Registry* r)
    : connections(*r->GetCounter("ds_net_connections_total",
                                 "Client connections accepted")),
      active_connections(*r->GetGauge("ds_net_connections_active",
                                      "Currently open client connections")),
      requests(*r->GetCounter("ds_net_requests_total",
                              "Estimate requests received over the wire "
                              "(batch items count individually)")),
      responses_ok(*r->GetCounter("ds_net_responses_total",
                                  "Estimate responses sent, by status",
                                  {{"status", WireStatusName(WireStatus::kOk)}})),
      responses_error(
          *r->GetCounter("ds_net_responses_total",
                         "Estimate responses sent, by status",
                         {{"status", WireStatusName(WireStatus::kError)}})),
      responses_rejected(*r->GetCounter(
          "ds_net_responses_total", "Estimate responses sent, by status",
          {{"status", WireStatusName(WireStatus::kRejected)}})),
      http_requests(*r->GetCounter("ds_net_http_requests_total",
                                   "HTTP requests handled (all endpoints)")),
      protocol_errors(*r->GetCounter(
          "ds_net_protocol_errors_total",
          "Connections dropped for malformed framing or HTTP")),
      bytes_read(*r->GetCounter("ds_net_bytes_read_total",
                                "Bytes read from client sockets")),
      bytes_written(*r->GetCounter("ds_net_bytes_written_total",
                                   "Bytes written to client sockets")),
      build_info(*r->GetGauge(
          "ds_build_info", "Build identity (constant 1; labels carry it)",
          {{"git_sha", util::GetBuildInfo().git_sha},
           {"build_type", util::GetBuildInfo().build_type}})),
      uptime_seconds(*r->GetGauge("ds_net_uptime_seconds",
                                  "Seconds since the server started")) {
  build_info.Set(1);
}

obs::Counter& NetMetrics::Response(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return responses_ok;
    case WireStatus::kError:
      return responses_error;
    case WireStatus::kRejected:
      return responses_rejected;
  }
  return responses_error;
}

namespace {

__attribute__((format(printf, 2, 3))) void AppendFmt(std::string* out,
                                                     const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

}  // namespace

double NetServer::UptimeSeconds() const {
  const int64_t start = start_us_.load(std::memory_order_relaxed);
  if (start == 0) return 0.0;
  return static_cast<double>(obs::TraceRecorder::NowUs() - start) / 1e6;
}

NetServer::TenantStats* NetServer::Tenant(const std::string& name) {
  util::MutexLock lock(tenant_mu_);
  auto [it, inserted] = tenants_.try_emplace(name);
  if (inserted) {
    const obs::Labels labels = {{"tenant", name}};
    it->second.submitted =
        registry_->GetCounter("ds_net_tenant_requests_total",
                              "Requests received, by tenant", labels);
    it->second.completed = registry_->GetCounter(
        "ds_net_tenant_completed_total",
        "Responses answered ok or error, by tenant", labels);
    it->second.rejected =
        registry_->GetCounter("ds_net_tenant_rejected_total",
                              "Admission-control refusals, by tenant",
                              labels);
    it->second.shed =
        registry_->GetCounter("ds_net_tenant_shed_total",
                              "Queue-full backpressure sheds, by tenant",
                              labels);
    it->second.latency_us = registry_->GetHistogram(
        "ds_net_tenant_latency_us",
        "Receive-to-response-queued latency in microseconds, by tenant",
        labels);
  }
  return &it->second;
}

std::string NetServer::StatuszJson() const {
  const util::BuildInfo build = util::GetBuildInfo();
  std::vector<std::pair<std::string, TenantStats>> rows;
  {
    util::MutexLock lock(tenant_mu_);
    rows.assign(tenants_.begin(), tenants_.end());
  }
  std::string out;
  out.reserve(1024);
  out += "{\"build\":{\"git_sha\":\"";
  out += JsonEscape(build.git_sha);
  out += "\",\"build_type\":\"";
  out += JsonEscape(build.build_type);
  out += "\",\"compiler\":\"";
  out += JsonEscape(build.compiler);
  out += "\"}";
  AppendFmt(&out, ",\"uptime_seconds\":%.3f", UptimeSeconds());
  AppendFmt(&out, ",\"draining\":%s", draining() ? "true" : "false");
  AppendFmt(&out, ",\"workers\":%zu", workers_.size());
  AppendFmt(&out, ",\"connections\":{\"active\":%zu,\"total\":%llu}",
            active_connections_.load(std::memory_order_relaxed),
            static_cast<unsigned long long>(metrics_.connections.value()));
  AppendFmt(&out,
            ",\"net\":{\"requests\":%llu,\"responses_ok\":%llu,"
            "\"responses_error\":%llu,\"responses_rejected\":%llu,"
            "\"http_requests\":%llu,\"protocol_errors\":%llu}",
            static_cast<unsigned long long>(metrics_.requests.value()),
            static_cast<unsigned long long>(metrics_.responses_ok.value()),
            static_cast<unsigned long long>(metrics_.responses_error.value()),
            static_cast<unsigned long long>(
                metrics_.responses_rejected.value()),
            static_cast<unsigned long long>(metrics_.http_requests.value()),
            static_cast<unsigned long long>(
                metrics_.protocol_errors.value()));
  out += ",\"tenants\":[";
  bool first = true;
  for (const auto& [name, stats] : rows) {
    if (!first) out += ',';
    first = false;
    const obs::HistogramSnapshot lat = stats.latency_us->Snapshot();
    out += "{\"tenant\":\"";
    out += JsonEscape(name);
    out += '"';
    AppendFmt(&out,
              ",\"submitted\":%llu,\"completed\":%llu,\"rejected\":%llu,"
              "\"shed\":%llu,\"count\":%llu,\"p50_us\":%llu,"
              "\"p99_us\":%llu}",
              static_cast<unsigned long long>(stats.submitted->value()),
              static_cast<unsigned long long>(stats.completed->value()),
              static_cast<unsigned long long>(stats.rejected->value()),
              static_cast<unsigned long long>(stats.shed->value()),
              static_cast<unsigned long long>(lat.count),
              static_cast<unsigned long long>(lat.ApproxPercentile(0.50)),
              static_cast<unsigned long long>(lat.ApproxPercentile(0.99)));
  }
  out += "]}";
  return out;
}

std::string NetServer::StatuszText() const {
  const util::BuildInfo build = util::GetBuildInfo();
  std::vector<std::pair<std::string, TenantStats>> rows;
  {
    util::MutexLock lock(tenant_mu_);
    rows.assign(tenants_.begin(), tenants_.end());
  }
  std::string out;
  out.reserve(1024);
  AppendFmt(&out, "ds_served  sha=%s  type=%s\n", build.git_sha,
            build.build_type);
  AppendFmt(&out,
            "uptime %.1fs  draining %s  workers %zu  conns %zu/%llu\n",
            UptimeSeconds(), draining() ? "yes" : "no", workers_.size(),
            active_connections_.load(std::memory_order_relaxed),
            static_cast<unsigned long long>(metrics_.connections.value()));
  AppendFmt(&out,
            "net: requests=%llu ok=%llu error=%llu rejected=%llu "
            "http=%llu proto_err=%llu\n",
            static_cast<unsigned long long>(metrics_.requests.value()),
            static_cast<unsigned long long>(metrics_.responses_ok.value()),
            static_cast<unsigned long long>(metrics_.responses_error.value()),
            static_cast<unsigned long long>(
                metrics_.responses_rejected.value()),
            static_cast<unsigned long long>(metrics_.http_requests.value()),
            static_cast<unsigned long long>(
                metrics_.protocol_errors.value()));
  AppendFmt(&out, "%-16s %8s %8s %6s %6s %9s %9s\n", "tenant", "submit",
            "done", "rej", "shed", "p50us", "p99us");
  for (const auto& [name, stats] : rows) {
    const obs::HistogramSnapshot lat = stats.latency_us->Snapshot();
    AppendFmt(&out, "%-16s %8llu %8llu %6llu %6llu %9llu %9llu\n",
              name.c_str(),
              static_cast<unsigned long long>(stats.submitted->value()),
              static_cast<unsigned long long>(stats.completed->value()),
              static_cast<unsigned long long>(stats.rejected->value()),
              static_cast<unsigned long long>(stats.shed->value()),
              static_cast<unsigned long long>(lat.ApproxPercentile(0.50)),
              static_cast<unsigned long long>(lat.ApproxPercentile(0.99)));
  }
  return out;
}

#if defined(__linux__)

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// A connection buffering more than this unanswered input or output is
/// either malicious or stuck; close it instead of growing without bound.
constexpr size_t kMaxReadBuffer = kMaxPayloadBytes + kFrameHeaderSize + 4096;
constexpr size_t kMaxWriteBuffer = 8 * 1024 * 1024;

uint32_t ConnEvents(bool want_write) {
  return EPOLLIN | EPOLLRDHUP | EPOLLET | (want_write ? EPOLLOUT : 0u);
}

}  // namespace

struct Connection;

/// Per-worker state: the event loop, its thread, and the connections it
/// owns. Everything except the loop's Post queue is touched only from the
/// loop thread.
struct NetServer::Worker {
  size_t index = 0;
  int cpu = -1;  // planned CPU, -1 = unpinned
  EventLoop loop;
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  NetServer* server = nullptr;
};

/// One client connection. Owned by its worker's `conns` map; completion
/// tasks hold weak_ptrs, so a connection that closes mid-request simply
/// drops the response.
struct Connection : std::enable_shared_from_this<Connection> {
  enum class Proto { kSniffing, kBinary, kHttp };

  util::UniqueFd fd;
  NetServer* server = nullptr;
  NetServer::Worker* worker = nullptr;
  Proto proto = Proto::kSniffing;
  std::string tenant;
  /// Cached /statusz ledger row for `tenant`; refreshed when HELLO (or an
  /// X-DS-Tenant header) changes the tenant, so the hot path never takes
  /// the ledger lock.
  NetServer::TenantStats* ledger = nullptr;
  std::string rbuf;
  std::string wbuf;  // unsent response bytes (fd would block)
  bool open = true;
  /// Close requested after the current wbuf drains; no further input is
  /// processed and no further responses are queued once set.
  bool close_after_flush = false;
  /// An async HTTP response is outstanding; pipelined requests stay in
  /// rbuf until it is queued so responses go out in request order.
  bool http_busy = false;

  void OnEvent(uint32_t events);
  void ReadInput();
  void Dispatch();
  void DispatchBinary();
  void DispatchHttp();
  void HandleFrame(const FrameHeader& header, std::string_view payload);
  void HandleEstimate(uint64_t request_id, std::string_view payload,
                      const obs::WireTraceContext& trace,
                      int64_t received_us);
  void HandleBatch(uint64_t request_id, std::string_view payload,
                   const obs::WireTraceContext& trace, int64_t received_us);
  void HandleHttpRequest(const HttpRequest& req);
  NetServer::TenantStats* Ledger();
  void SendFrame(FrameType type, WireStatus status, uint64_t request_id,
                 std::string_view payload);
  void CountAndSendFrame(FrameType type, WireStatus status,
                         uint64_t request_id, std::string_view payload);
  void QueueWrite(std::string_view bytes);
  void FlushWrites();
  void ProtocolError(FrameType type, uint64_t request_id,
                     const std::string& message);
  void CloseAfterFlush();
  void Close();
};

void Connection::OnEvent(uint32_t events) {
  if (!open) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    Close();
    return;
  }
  if (events & EPOLLOUT) FlushWrites();
  if (!open || close_after_flush) return;
  if (events & (EPOLLIN | EPOLLRDHUP)) ReadInput();
}

void Connection::ReadInput() {
  char chunk[kReadChunk];
  while (open && !close_after_flush) {
    const ssize_t n = read(fd.get(), chunk, sizeof(chunk));
    if (n > 0) {
      server->metrics_.bytes_read.Add(static_cast<uint64_t>(n));
      rbuf.append(chunk, static_cast<size_t>(n));
      if (rbuf.size() > kMaxReadBuffer) {
        server->metrics_.protocol_errors.Add();
        Close();
        return;
      }
      // Parse eagerly so a pipelining client's requests start flowing into
      // the batching core before the socket is fully drained.
      Dispatch();
      continue;
    }
    if (n == 0) {  // orderly peer shutdown
      Close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // edge drained
    if (errno == EINTR) continue;
    Close();
    return;
  }
}

void Connection::Dispatch() {
  if (proto == Proto::kSniffing) {
    if (rbuf.size() < kMagicSize) return;
    if (std::memcmp(rbuf.data(), kMagic, kMagicSize) == 0) {
      proto = Proto::kBinary;
      rbuf.erase(0, kMagicSize);
    } else {
      proto = Proto::kHttp;
    }
  }
  if (proto == Proto::kBinary) {
    DispatchBinary();
  } else {
    DispatchHttp();
  }
}

void Connection::DispatchBinary() {
  while (open && !close_after_flush && rbuf.size() >= kFrameHeaderSize) {
    FrameHeader header;
    if (auto st = DecodeFrameHeader(rbuf.data(), &header); !st.ok()) {
      // The header did not decode, so the offending type is unknowable;
      // kPing is the undecodable-header fallback.
      ProtocolError(FrameType::kPing, 0, st.message());
      return;
    }
    const size_t frame_size = kFrameHeaderSize + header.payload_size;
    if (rbuf.size() < frame_size) return;  // wait for the full frame
    // The payload view stays valid through HandleFrame: nothing below
    // mutates rbuf until the erase.
    HandleFrame(header,
                std::string_view(rbuf.data() + kFrameHeaderSize,
                                 header.payload_size));
    if (!open || close_after_flush) return;
    rbuf.erase(0, frame_size);
  }
}

NetServer::TenantStats* Connection::Ledger() {
  if (ledger == nullptr) ledger = server->Tenant(tenant);
  return ledger;
}

void Connection::HandleFrame(const FrameHeader& header,
                             std::string_view payload) {
  // Strip the optional trace-context prefix before any payload parsing;
  // the frame was just read off the socket, so "now" is the receive time
  // the flight record's pre-queue stage is measured from.
  const int64_t received_us = obs::TraceRecorder::NowUs();
  obs::WireTraceContext trace;
  if (auto st = ConsumeTraceContext(header.flags, &payload, &trace.trace_id,
                                    &trace.parent_span);
      !st.ok()) {
    ProtocolError(header.type, header.request_id, st.message());
    return;
  }
  switch (header.type) {
    case FrameType::kHello: {
      ByteReader r(payload);
      std::string name;
      if (!r.ReadString16(&name) || !r.empty()) {
        ProtocolError(FrameType::kHello, header.request_id,
                      "malformed HELLO payload");
        return;
      }
      if (!name.empty() && name != tenant) {
        tenant = std::move(name);
        ledger = nullptr;  // re-resolve lazily for the new tenant
      }
      SendFrame(FrameType::kHello, WireStatus::kOk, header.request_id, "");
      return;
    }
    case FrameType::kPing:
      SendFrame(FrameType::kPing, WireStatus::kOk, header.request_id, "");
      return;
    case FrameType::kStats:
      SendFrame(FrameType::kStats, WireStatus::kOk, header.request_id,
                server->backend_->MetricsJson());
      return;
    case FrameType::kEstimate:
      HandleEstimate(header.request_id, payload, trace, received_us);
      return;
    case FrameType::kEstimateBatch:
      HandleBatch(header.request_id, payload, trace, received_us);
      return;
  }
}

void Connection::HandleEstimate(uint64_t request_id,
                                std::string_view payload,
                                const obs::WireTraceContext& trace,
                                int64_t received_us) {
  server->metrics_.requests.Add();
  NetServer::TenantStats* stats = Ledger();
  stats->submitted->Add();
  obs::TraceRecorder* tracer = server->backend_->tracer();
  EstimateRequest req;
  const auto parse_status = ParseEstimateRequest(payload, &req);
  // RecordSpan is a no-op on an unsampled request (trace_id 0) or a
  // tracer-less backend, so the spans below cost a branch when off.
  obs::RecordSpan(tracer, trace.trace_id, trace.parent_span, "net_decode",
                  received_us, obs::TraceRecorder::NowUs(), payload.size());
  if (!parse_status.ok()) {
    stats->completed->Add();
    CountAndSendFrame(FrameType::kEstimate, WireStatus::kError, request_id,
                      parse_status.message());
    return;
  }
  const int64_t admit_start_us = obs::TraceRecorder::NowUs();
  const bool admitted =
      server->admission_.Admit(tenant, server->NowSeconds());
  obs::RecordSpan(tracer, trace.trace_id, trace.parent_span,
                  "net_admission", admit_start_us,
                  obs::TraceRecorder::NowUs(), admitted ? 1 : 0);
  if (!admitted) {
    server->backend_->CountShed();
    stats->rejected->Add();
    CountAndSendFrame(FrameType::kEstimate, WireStatus::kRejected, request_id,
                      "tenant '" + tenant + "' exceeded its request rate");
    return;
  }
  server->in_flight_.fetch_add(1, std::memory_order_relaxed);
  std::weak_ptr<Connection> weak = weak_from_this();
  NetServer* srv = server;
  NetServer::Worker* w = worker;
  serve::RequestContext ctx;
  ctx.trace = trace;
  ctx.received_us = received_us;
  ctx.tenant = tenant;
  const auto status = server->backend_->SubmitAsync(
      std::move(req.sketch), std::move(req.sql),
      [weak, srv, w, stats, tracer, trace, received_us,
       request_id](Result<double> result) {
        // Runs on a serve worker; hop to the owning event loop so only
        // that thread ever touches the connection.
        std::string frame;
        if (result.ok()) {
          std::string payload_bytes;
          AppendF64(&payload_bytes, *result);
          AppendFrame(&frame, FrameType::kEstimate, WireStatus::kOk,
                      request_id, payload_bytes);
        } else {
          AppendFrame(&frame, FrameType::kEstimate, WireStatus::kError,
                      request_id, result.status().message());
        }
        const WireStatus wire =
            result.ok() ? WireStatus::kOk : WireStatus::kError;
        w->loop.Post([weak, srv, wire, stats, tracer, trace, received_us,
                      frame = std::move(frame)] {
          if (auto conn = weak.lock(); conn != nullptr && conn->open) {
            const int64_t write_start_us = obs::TraceRecorder::NowUs();
            srv->metrics_.Response(wire).Add();
            conn->QueueWrite(frame);
            const int64_t now_us = obs::TraceRecorder::NowUs();
            obs::RecordSpan(tracer, trace.trace_id, trace.parent_span,
                            "net_write", write_start_us, now_us,
                            frame.size());
            stats->completed->Add();
            stats->latency_us->Record(static_cast<uint64_t>(
                std::max<int64_t>(0, now_us - received_us)));
          }
          srv->in_flight_.fetch_sub(1, std::memory_order_release);
        });
      },
      worker->index, std::move(ctx));
  if (status != serve::SubmitStatus::kOk) {
    server->in_flight_.fetch_sub(1, std::memory_order_relaxed);
    const bool shutdown = status == serve::SubmitStatus::kShuttingDown;
    if (shutdown) {
      stats->completed->Add();
    } else {
      stats->shed->Add();
    }
    CountAndSendFrame(
        FrameType::kEstimate,
        shutdown ? WireStatus::kError : WireStatus::kRejected, request_id,
        shutdown ? "server is shutting down"
                 : "server overloaded (queue full)");
  }
}

namespace {

/// Fan-in state for one ESTIMATE_BATCH frame: slots filled by serve
/// workers (distinct indices, no lock needed), the last completion posts
/// the response.
struct BatchContext {
  std::vector<Result<double>> results;
  std::vector<serve::SubmitStatus> statuses;
  std::atomic<size_t> remaining{0};
  uint64_t request_id = 0;
};

void FinishBatch(const std::shared_ptr<BatchContext>& ctx,
                 const std::weak_ptr<Connection>& weak, NetMetrics* metrics,
                 std::atomic<uint64_t>* in_flight, EventLoop* loop,
                 NetServer::TenantStats* stats, obs::TraceRecorder* tracer,
                 obs::WireTraceContext trace, int64_t received_us) {
  // Only ever called after HandleBatch released its guard token (below),
  // so ctx->statuses is fully assigned and safe to read here.
  const uint64_t accepted = static_cast<uint64_t>(
      std::count(ctx->statuses.begin(), ctx->statuses.end(),
                 serve::SubmitStatus::kOk));
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(ctx->results.size()));
  uint64_t ok = 0, error = 0;
  for (size_t i = 0; i < ctx->results.size(); ++i) {
    AppendBatchItem(&payload, ctx->results[i]);
    if (ctx->statuses[i] != serve::SubmitStatus::kOk) continue;
    if (ctx->results[i].ok()) {
      ++ok;
    } else {
      ++error;
    }
  }
  std::string frame;
  AppendFrame(&frame, FrameType::kEstimateBatch, WireStatus::kOk,
              ctx->request_id, payload);
  loop->Post([weak, metrics, in_flight, ok, error, accepted, stats, tracer,
              trace, received_us, frame = std::move(frame)] {
    if (auto conn = weak.lock(); conn != nullptr && conn->open) {
      const int64_t write_start_us = obs::TraceRecorder::NowUs();
      metrics->responses_ok.Add(ok);
      metrics->responses_error.Add(error);
      conn->QueueWrite(frame);
      const int64_t now_us = obs::TraceRecorder::NowUs();
      obs::RecordSpan(tracer, trace.trace_id, trace.parent_span,
                      "net_write", write_start_us, now_us, frame.size());
      stats->completed->Add(ok + error);
      const uint64_t latency = static_cast<uint64_t>(
          std::max<int64_t>(0, now_us - received_us));
      // One Record per answered item keeps the histogram's count aligned
      // with the per-item submitted/completed counters.
      for (uint64_t i = 0; i < ok + error; ++i) {
        stats->latency_us->Record(latency);
      }
    }
    in_flight->fetch_sub(accepted, std::memory_order_release);
  });
}

}  // namespace

void Connection::HandleBatch(uint64_t request_id, std::string_view payload,
                             const obs::WireTraceContext& trace,
                             int64_t received_us) {
  NetServer::TenantStats* stats = Ledger();
  obs::TraceRecorder* tracer = server->backend_->tracer();
  EstimateBatchRequest req;
  const auto parse_status = ParseEstimateBatchRequest(payload, &req);
  obs::RecordSpan(tracer, trace.trace_id, trace.parent_span, "net_decode",
                  received_us, obs::TraceRecorder::NowUs(), payload.size());
  if (!parse_status.ok()) {
    // A malformed batch's item count is unknowable; count one request so
    // the requests/responses balance still holds.
    server->metrics_.requests.Add();
    stats->submitted->Add();
    stats->completed->Add();
    CountAndSendFrame(FrameType::kEstimateBatch, WireStatus::kError,
                      request_id, parse_status.message());
    return;
  }
  const size_t n = req.sqls.size();
  server->metrics_.requests.Add(n);
  stats->submitted->Add(n);
  if (n == 0) {
    SendFrame(FrameType::kEstimateBatch, WireStatus::kOk, request_id,
              std::string(4, '\0'));  // u32 count = 0
    return;
  }
  const int64_t admit_start_us = obs::TraceRecorder::NowUs();
  const bool admitted = server->admission_.Admit(tenant, server->NowSeconds(),
                                                 static_cast<double>(n));
  obs::RecordSpan(tracer, trace.trace_id, trace.parent_span,
                  "net_admission", admit_start_us,
                  obs::TraceRecorder::NowUs(), admitted ? 1 : 0);
  if (!admitted) {
    server->backend_->CountShed(n);
    server->metrics_.responses_rejected.Add(n);
    stats->rejected->Add(n);
    SendFrame(FrameType::kEstimateBatch, WireStatus::kRejected, request_id,
              "tenant '" + tenant + "' exceeded its request rate");
    return;
  }

  auto ctx = std::make_shared<BatchContext>();
  ctx->request_id = request_id;
  ctx->results.assign(n, Result<double>(Status::Internal("pending")));
  std::weak_ptr<Connection> weak = weak_from_this();
  NetServer* srv = server;
  NetServer::Worker* w = worker;
  serve::RequestContext req_ctx;
  req_ctx.trace = trace;
  req_ctx.received_us = received_us;
  req_ctx.tenant = tenant;

  // Count every item as in-flight up front; FinishBatch releases the
  // accepted ones, the rejected ones are released below once known.
  server->in_flight_.fetch_add(n, std::memory_order_relaxed);
  // One extra token guards ctx->statuses: accepted-item callbacks can fire
  // on serve workers before SubmitManyAsync returns, and must not find
  // remaining == 1 (which would run FinishBatch, reading ctx->statuses)
  // until this thread assigned statuses and released the guard below.
  ctx->remaining.store(n + 1, std::memory_order_relaxed);
  ctx->statuses = server->backend_->SubmitManyAsync(
      req.sketch, std::move(req.sqls),
      [ctx, weak, srv, w, stats, tracer, trace,
       received_us](size_t index, Result<double> result) {
        ctx->results[index] = std::move(result);
        if (ctx->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          FinishBatch(ctx, weak, &srv->metrics_, &srv->in_flight_, &w->loop,
                      stats, tracer, trace, received_us);
        }
      },
      worker->index, std::move(req_ctx));

  // Resolve the rejected slots ourselves (their callbacks never fire).
  size_t rejected = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ctx->statuses[i] == serve::SubmitStatus::kOk) continue;
    ++rejected;
    const bool shutdown =
        ctx->statuses[i] == serve::SubmitStatus::kShuttingDown;
    ctx->results[i] = Result<double>(Status::OutOfRange(
        shutdown ? "server is shutting down" : "rejected: queue full"));
  }
  if (rejected > 0) {
    server->metrics_.responses_rejected.Add(rejected);
    stats->shed->Add(rejected);
    server->in_flight_.fetch_sub(rejected, std::memory_order_relaxed);
  }
  // Release the rejected items' tokens plus the statuses guard token. The
  // acq_rel RMW chain on `remaining` publishes statuses and the rejected
  // results to whichever callback ends up running FinishBatch; if every
  // accepted callback already fired, finishing the batch is on us.
  if (ctx->remaining.fetch_sub(rejected + 1, std::memory_order_acq_rel) ==
      rejected + 1) {
    FinishBatch(ctx, weak, &srv->metrics_, &srv->in_flight_, &w->loop,
                stats, tracer, trace, received_us);
  }
}

void Connection::DispatchHttp() {
  while (open && !http_busy && !close_after_flush) {
    HttpRequest req;
    size_t consumed = 0;
    switch (ParseHttpRequest(rbuf, &req, &consumed)) {
      case HttpParseResult::kNeedMore:
        return;
      case HttpParseResult::kBad:
        server->metrics_.protocol_errors.Add();
        QueueWrite(BuildHttpResponse(400, "text/plain",
                                     "malformed HTTP request\n", true));
        CloseAfterFlush();
        return;
      case HttpParseResult::kParsed:
        rbuf.erase(0, consumed);
        HandleHttpRequest(req);
        break;
    }
  }
}

void Connection::HandleHttpRequest(const HttpRequest& req) {
  const int64_t received_us = obs::TraceRecorder::NowUs();
  server->metrics_.http_requests.Add();
  server->metrics_.uptime_seconds.Set(server->UptimeSeconds());
  const bool close = req.WantsClose();

  // The request target may carry a query string ("/tracez?format=chrome");
  // route on the path, leave the query for the endpoint.
  std::string_view target(req.path);
  std::string_view query;
  if (const size_t q = target.find('?'); q != std::string_view::npos) {
    query = target.substr(q + 1);
    target = target.substr(0, q);
  }

  if (req.method == "GET" && target == "/metrics") {
    QueueWrite(BuildHttpResponse(
        200, obs::kPrometheusContentType,
        obs::ToPrometheusText(server->backend_->ObsSnapshot()), close));
    if (close) CloseAfterFlush();
    return;
  }
  if (req.method == "GET" && target == "/healthz") {
    QueueWrite(BuildHttpResponse(200, "text/plain", "ok\n", close));
    if (close) CloseAfterFlush();
    return;
  }
  if (req.method == "GET" && target == "/readyz") {
    // Drain-aware readiness: flips to 503 the moment BeginDrain() runs so
    // load balancers stop routing here while in-flight work finishes.
    if (server->draining()) {
      QueueWrite(BuildHttpResponse(503, "text/plain", "draining\n", close));
    } else {
      QueueWrite(BuildHttpResponse(200, "text/plain", "ready\n", close));
    }
    if (close) CloseAfterFlush();
    return;
  }
  if (req.method == "GET" && target == "/statusz") {
    if (query.find("format=text") != std::string_view::npos) {
      QueueWrite(BuildHttpResponse(200, "text/plain", server->StatuszText(),
                                   close));
    } else {
      QueueWrite(BuildHttpResponse(200, "application/json",
                                   server->StatuszJson(), close));
    }
    if (close) CloseAfterFlush();
    return;
  }
  if (req.method == "GET" && target == "/tracez") {
    obs::TraceRecorder* tracer = server->backend_->tracer();
    std::string body;
    if (query.find("format=chrome") != std::string_view::npos) {
      body = obs::ToChromeTraceJson(
          tracer != nullptr ? tracer->Snapshot()
                            : std::vector<obs::SpanRecord>{});
    } else {
      body = obs::TracezJson(*server->backend_->flight(), tracer);
    }
    QueueWrite(BuildHttpResponse(200, "application/json", body, close));
    if (close) CloseAfterFlush();
    return;
  }
  if (target != "/estimate") {
    QueueWrite(BuildHttpResponse(404, "application/json",
                                 "{\"error\":\"not found\"}\n", close));
    if (close) CloseAfterFlush();
    return;
  }
  if (req.method != "POST") {
    QueueWrite(BuildHttpResponse(405, "application/json",
                                 "{\"error\":\"use POST\"}\n", close));
    if (close) CloseAfterFlush();
    return;
  }

  server->metrics_.requests.Add();
  auto sketch = ExtractJsonStringField(req.body, "sketch");
  auto sql = ExtractJsonStringField(req.body, "sql");
  const std::string http_tenant =
      req.Header("x-ds-tenant").value_or(tenant);
  NetServer::TenantStats* stats =
      http_tenant == tenant ? Ledger() : server->Tenant(http_tenant);
  stats->submitted->Add();
  // X-DS-Trace carries the same context the binary protocol puts behind
  // kFlagTraceContext; a malformed value is treated as unsampled.
  obs::WireTraceContext trace;
  if (auto header = req.Header("x-ds-trace"); header.has_value()) {
    (void)obs::ParseTraceHeader(*header, &trace);
  }
  obs::TraceRecorder* tracer = server->backend_->tracer();
  obs::RecordSpan(tracer, trace.trace_id, trace.parent_span, "net_decode",
                  received_us, obs::TraceRecorder::NowUs(),
                  req.body.size());
  if (!sketch.has_value() || !sql.has_value()) {
    server->metrics_.responses_error.Add();
    stats->completed->Add();
    QueueWrite(BuildHttpResponse(
        400, "application/json",
        "{\"error\":\"body must be {\\\"sketch\\\": ..., \\\"sql\\\": "
        "...}\"}\n",
        close));
    if (close) CloseAfterFlush();
    return;
  }
  const int64_t admit_start_us = obs::TraceRecorder::NowUs();
  const bool admitted =
      server->admission_.Admit(http_tenant, server->NowSeconds());
  obs::RecordSpan(tracer, trace.trace_id, trace.parent_span,
                  "net_admission", admit_start_us,
                  obs::TraceRecorder::NowUs(), admitted ? 1 : 0);
  if (!admitted) {
    server->backend_->CountShed();
    server->metrics_.responses_rejected.Add();
    stats->rejected->Add();
    QueueWrite(BuildHttpResponse(
        429, "application/json",
        "{\"error\":\"tenant '" + JsonEscape(http_tenant) +
            "' exceeded its request rate\"}\n",
        close));
    if (close) CloseAfterFlush();
    return;
  }

  server->in_flight_.fetch_add(1, std::memory_order_relaxed);
  // Hold further pipelined requests until this response is queued, so
  // HTTP/1.1 responses go out in request order even though the estimate
  // completes asynchronously.
  http_busy = true;
  std::weak_ptr<Connection> weak = weak_from_this();
  NetServer* srv = server;
  NetServer::Worker* w = worker;
  serve::RequestContext req_ctx;
  req_ctx.trace = trace;
  req_ctx.received_us = received_us;
  req_ctx.tenant = http_tenant;
  const auto status = server->backend_->SubmitAsync(
      std::move(*sketch), std::move(*sql),
      [weak, srv, w, close, stats, tracer, trace,
       received_us](Result<double> result) {
        std::string response;
        WireStatus wire;
        if (result.ok()) {
          char body[64];
          std::snprintf(body, sizeof(body), "{\"estimate\":%.1f}\n",
                        *result);
          response = BuildHttpResponse(200, "application/json", body, close);
          wire = WireStatus::kOk;
        } else {
          response = BuildHttpResponse(
              400, "application/json",
              "{\"error\":\"" + JsonEscape(result.status().message()) +
                  "\"}\n",
              close);
          wire = WireStatus::kError;
        }
        w->loop.Post(
            [weak, srv, wire, close, stats, tracer, trace, received_us,
             response = std::move(response)] {
              if (auto conn = weak.lock(); conn != nullptr && conn->open) {
                const int64_t write_start_us = obs::TraceRecorder::NowUs();
                srv->metrics_.Response(wire).Add();
                conn->http_busy = false;
                conn->QueueWrite(response);
                const int64_t now_us = obs::TraceRecorder::NowUs();
                obs::RecordSpan(tracer, trace.trace_id, trace.parent_span,
                                "net_write", write_start_us, now_us,
                                response.size());
                stats->completed->Add();
                stats->latency_us->Record(static_cast<uint64_t>(
                    std::max<int64_t>(0, now_us - received_us)));
                if (close) {
                  conn->CloseAfterFlush();
                } else if (conn->open) {
                  // Drain any pipelined requests buffered while busy.
                  conn->Dispatch();
                }
              }
              srv->in_flight_.fetch_sub(1, std::memory_order_release);
            });
      },
      worker->index, std::move(req_ctx));
  if (status != serve::SubmitStatus::kOk) {
    http_busy = false;
    server->in_flight_.fetch_sub(1, std::memory_order_relaxed);
    const bool shutdown = status == serve::SubmitStatus::kShuttingDown;
    if (shutdown) {
      stats->completed->Add();
    } else {
      stats->shed->Add();
    }
    server->metrics_
        .Response(shutdown ? WireStatus::kError : WireStatus::kRejected)
        .Add();
    QueueWrite(BuildHttpResponse(
        shutdown ? 503 : 429, "application/json",
        shutdown ? "{\"error\":\"server is shutting down\"}\n"
                 : "{\"error\":\"server overloaded (queue full)\"}\n",
        close));
    if (close) CloseAfterFlush();
  }
}

void Connection::SendFrame(FrameType type, WireStatus status,
                           uint64_t request_id, std::string_view payload) {
  std::string frame;
  AppendFrame(&frame, type, status, request_id, payload);
  QueueWrite(frame);
}

void Connection::CountAndSendFrame(FrameType type, WireStatus status,
                                   uint64_t request_id,
                                   std::string_view payload) {
  server->metrics_.Response(status).Add();
  SendFrame(type, status, request_id, payload);
}

void Connection::QueueWrite(std::string_view bytes) {
  if (!open || close_after_flush) return;
  if (wbuf.empty()) {
    // Fast path: write straight from the caller's buffer; only the
    // leftover (socket buffer full) is copied.
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = write(fd.get(), bytes.data() + off,
                              bytes.size() - off);
      if (n > 0) {
        server->metrics_.bytes_written.Add(static_cast<uint64_t>(n));
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      Close();
      return;
    }
    if (off == bytes.size()) return;
    wbuf.assign(bytes.data() + off, bytes.size() - off);
    (void)worker->loop.Modify(fd.get(), ConnEvents(/*want_write=*/true));
    return;
  }
  wbuf.append(bytes.data(), bytes.size());
  if (wbuf.size() > kMaxWriteBuffer) {
    server->metrics_.protocol_errors.Add();
    Close();  // client is not reading its responses
  }
}

void Connection::FlushWrites() {
  size_t off = 0;
  while (off < wbuf.size()) {
    const ssize_t n = write(fd.get(), wbuf.data() + off, wbuf.size() - off);
    if (n > 0) {
      server->metrics_.bytes_written.Add(static_cast<uint64_t>(n));
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    Close();
    return;
  }
  wbuf.erase(0, off);
  if (wbuf.empty()) {
    if (close_after_flush) {
      Close();
      return;
    }
    (void)worker->loop.Modify(fd.get(), ConnEvents(/*want_write=*/false));
  }
}

void Connection::ProtocolError(FrameType type, uint64_t request_id,
                               const std::string& message) {
  server->metrics_.protocol_errors.Add();
  SendFrame(type, WireStatus::kError, request_id, message);
  CloseAfterFlush();
}

/// Closes once wbuf has drained, so a just-queued final response is not
/// truncated by an immediate close; closes now if nothing is pending.
void Connection::CloseAfterFlush() {
  if (!open || close_after_flush) return;
  if (wbuf.empty()) {
    Close();
    return;
  }
  close_after_flush = true;
}

void Connection::Close() {
  if (!open) return;
  open = false;
  worker->loop.Remove(fd.get());
  server->metrics_.active_connections.Add(-1);
  server->active_connections_.fetch_sub(1, std::memory_order_relaxed);
  // Erasing from the map drops the owning shared_ptr; the EventLoop keeps
  // the currently-executing handler alive until it returns, and the
  // UniqueFd closes the socket when the last reference goes.
  worker->conns.erase(fd.get());
}

// ---- NetServer --------------------------------------------------------------

NetServer::NetServer(serve::SketchServer* backend, NetServerOptions options)
    : backend_(backend),
      options_(std::move(options)),
      registry_(options_.metrics_registry != nullptr
                    ? options_.metrics_registry
                    : backend->obs_registry()),
      metrics_(registry_),
      admission_(options_.admission) {}

NetServer::~NetServer() { Stop(); }

double NetServer::NowSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status NetServer::StartListener() {
  listen_fd_.reset(socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0));
  if (!listen_fd_.valid()) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse listen host '" +
                                   options_.host + "' (IPv4 dotted quad)");
  }
  if (bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (listen(listen_fd_.get(), 512) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                  &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

void NetServer::AcceptReady(Worker* worker) {
  while (true) {
    const int raw = accept4(listen_fd_.get(), nullptr, nullptr,
                            SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EMFILE etc.: back off until the next readiness event
    }
    util::UniqueFd client(raw);
    if (!accepting_.load(std::memory_order_acquire) ||
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      continue;  // UniqueFd closes it — explicit connection-level shed
    }
    const int one = 1;
    setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    const int fd = client.get();
    conn->fd = std::move(client);
    conn->server = this;
    conn->worker = worker;
    conn->tenant = options_.default_tenant;
    std::weak_ptr<Connection> weak = conn;
    if (!worker->loop
             .Add(fd, ConnEvents(/*want_write=*/false),
                  [weak](uint32_t events) {
                    if (auto c = weak.lock()) c->OnEvent(events);
                  })
             .ok()) {
      continue;  // conn (and its fd) die here
    }
    worker->conns[fd] = std::move(conn);
    metrics_.connections.Add();
    metrics_.active_connections.Add(1);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status NetServer::Start() {
  util::MutexLock lock(stop_mu_);
  if (started_) return Status::AlreadyExists("NetServer already started");
  DS_RETURN_NOT_OK(StartListener());

  const util::CpuTopology topology = util::DetectCpuTopology();
  size_t num_workers = options_.num_workers > 0
                           ? options_.num_workers
                           : std::max<size_t>(topology.num_cores(), 1);
  const std::vector<int> cpu_plan = util::PlanWorkerCpus(topology,
                                                         num_workers);

  workers_.clear();
  for (size_t i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->server = this;
    w->cpu = options_.pin_threads && i < cpu_plan.size() ? cpu_plan[i] : -1;
    const obs::Labels loop_labels = {{"loop", std::to_string(i)}};
    w->loop.SetMetrics(
        registry_->GetCounter("ds_net_loop_wakeups_total",
                              "epoll_wait returns, by event loop",
                              loop_labels),
        registry_->GetHistogram(
            "ds_net_loop_lag_us",
            "Posted-task queueing delay in microseconds, by event loop",
            loop_labels));
    if (auto st = w->loop.Init(); !st.ok()) {
      workers_.clear();
      listen_fd_.reset();
      return st;
    }
    // Every worker watches the listening socket. Level-triggered so an
    // accept backlog re-notifies; EPOLLEXCLUSIVE (where the kernel has it)
    // wakes one worker per readiness instead of all of them.
    uint32_t listen_events = EPOLLIN;
#if defined(EPOLLEXCLUSIVE)
    listen_events |= EPOLLEXCLUSIVE;
#endif
    Worker* wp = w.get();
    if (auto st = w->loop.Add(listen_fd_.get(), listen_events,
                              [this, wp](uint32_t) { AcceptReady(wp); });
        !st.ok()) {
      workers_.clear();
      listen_fd_.reset();
      return st;
    }
    workers_.push_back(std::move(w));
  }

  accepting_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    Worker* wp = w.get();
    w->thread = std::thread([wp] {
      if (wp->cpu >= 0) {
        // Best-effort: a failed pin (cgroup change mid-flight) costs
        // locality, not correctness.
        (void)util::PinCurrentThreadToCpu(wp->cpu);
      }
      wp->loop.Run();
    });
  }
  started_ = true;
  stopped_ = false;
  draining_.store(false, std::memory_order_relaxed);
  start_us_.store(obs::TraceRecorder::NowUs(), std::memory_order_relaxed);
  return Status::OK();
}

void NetServer::Stop() {
  // Readiness flips first so /readyz reports "draining" for the whole
  // shutdown window, including a Stop() that never saw BeginDrain().
  BeginDrain();
  util::MutexLock lock(stop_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;

  // Phase 1: stop admitting new work. Workers may still get accept
  // wakeups; AcceptReady sees accepting_ == false and closes the socket.
  accepting_.store(false, std::memory_order_release);

  // Phase 2: drain. Every accepted estimate decrements in_flight_ from a
  // posted completion task, which only runs while the loops are alive —
  // so wait BEFORE stopping them. Bounded: a wedged backend (its Stop
  // drains its queues, so this cannot happen in a correct shutdown order)
  // forfeits the drain after 10 seconds rather than hanging forever.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (in_flight_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Phase 3: stop the loops and join. Connections close when the worker
  // state is destroyed below (UniqueFd).
  for (auto& w : workers_) w->loop.Stop();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  for (auto& w : workers_) {
    metrics_.active_connections.Add(
        -static_cast<double>(w->conns.size()));
    w->conns.clear();
  }
  active_connections_.store(0, std::memory_order_relaxed);
  workers_.clear();
  listen_fd_.reset();
}

#else  // !__linux__

struct NetServer::Worker {};

NetServer::NetServer(serve::SketchServer* backend, NetServerOptions options)
    : backend_(backend),
      options_(std::move(options)),
      registry_(options_.metrics_registry != nullptr
                    ? options_.metrics_registry
                    : backend->obs_registry()),
      metrics_(registry_),
      admission_(options_.admission) {}

NetServer::~NetServer() = default;

Status NetServer::Start() {
  return Status::Unimplemented("ds::net requires Linux (epoll)");
}
void NetServer::Stop() {}
Status NetServer::StartListener() {
  return Status::Unimplemented("ds::net requires Linux (epoll)");
}
void NetServer::AcceptReady(Worker*) {}
double NetServer::NowSeconds() const { return 0; }

#endif  // __linux__

}  // namespace ds::net

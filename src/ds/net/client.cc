#include "ds/net/client.h"

#include <cstring>

#if defined(__linux__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <cerrno>
#define DS_NET_CLIENT_POSIX 1
#endif

namespace ds::net {

#if defined(DS_NET_CLIENT_POSIX)

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port) {
  util::UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' (IPv4 dotted quad)");
  }
  if (connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NetClient client(std::move(fd));
  DS_RETURN_NOT_OK(client.WriteAll(std::string_view(kMagic, kMagicSize)));
  return client;
}

Status NetClient::WriteAll(std::string_view bytes) {
  if (!fd_.valid()) return Status::IOError("client is disconnected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd_.get(), bytes.data() + off,
                            bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fd_.reset();
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status NetClient::ReadFrame(FrameHeader* header, std::string* payload) {
  if (!fd_.valid()) return Status::IOError("client is disconnected");
  char chunk[16 * 1024];
  // First the header, then — once the payload size is known — the payload.
  while (true) {
    if (rbuf_.size() >= kFrameHeaderSize) {
      DS_RETURN_NOT_OK(DecodeFrameHeader(rbuf_.data(), header));
      const size_t total = kFrameHeaderSize + header->payload_size;
      if (rbuf_.size() >= total) {
        payload->assign(rbuf_, kFrameHeaderSize, header->payload_size);
        rbuf_.erase(0, total);
        return Status::OK();
      }
    }
    const ssize_t n = read(fd_.get(), chunk, sizeof(chunk));
    if (n > 0) {
      rbuf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fd_.reset();
    return n == 0 ? Status::IOError("server closed the connection")
                  : Status::IOError(std::string("read: ") +
                                    std::strerror(errno));
  }
}

Status NetClient::RoundTrip(FrameType type, uint64_t request_id,
                            std::string_view payload,
                            FrameHeader* resp_header,
                            std::string* resp_payload) {
  std::string frame;
  AppendFrame(&frame, type, WireStatus::kOk, request_id, payload);
  DS_RETURN_NOT_OK(WriteAll(frame));
  DS_RETURN_NOT_OK(ReadFrame(resp_header, resp_payload));
  if (resp_header->request_id != request_id) {
    fd_.reset();  // stream is out of sync; nothing downstream is trustworthy
    return Status::Internal(
        "response id " + std::to_string(resp_header->request_id) +
        " does not match request id " + std::to_string(request_id) +
        " (mixing pipelined and synchronous calls?)");
  }
  if (resp_header->type != type) {
    fd_.reset();
    return Status::Internal("response frame type does not match request");
  }
  return Status::OK();
}

Status NetClient::Hello(std::string_view tenant) {
  std::string payload;
  AppendString16(&payload, tenant);
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(
      RoundTrip(FrameType::kHello, next_id_++, payload, &header, &resp));
  if (header.status != WireStatus::kOk) {
    return Status::Internal("HELLO failed: " + resp);
  }
  return Status::OK();
}

Status NetClient::Ping() {
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(
      RoundTrip(FrameType::kPing, next_id_++, "", &header, &resp));
  if (header.status != WireStatus::kOk) {
    return Status::Internal("PING failed: " + resp);
  }
  return Status::OK();
}

Result<double> NetClient::Estimate(std::string_view sketch,
                                   std::string_view sql) {
  EstimateRequest req;
  req.sketch.assign(sketch);
  req.sql.assign(sql);
  std::string payload;
  AppendEstimateRequest(&payload, req);
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(
      RoundTrip(FrameType::kEstimate, next_id_++, payload, &header, &resp));
  switch (header.status) {
    case WireStatus::kOk: {
      ByteReader r(resp);
      double value = 0.0;
      if (!r.ReadF64(&value) || !r.empty()) {
        return Status::ParseError("malformed ESTIMATE response payload");
      }
      return value;
    }
    case WireStatus::kRejected:
      return Status::OutOfRange("rejected: " + resp);
    case WireStatus::kError:
      break;
  }
  return Status::Internal(resp.empty() ? "estimate failed" : resp);
}

Status NetClient::EstimateBatch(std::string_view sketch,
                                const std::vector<std::string>& sqls,
                                std::vector<Result<double>>* out) {
  EstimateBatchRequest req;
  req.sketch.assign(sketch);
  req.sqls = sqls;
  std::string payload;
  AppendEstimateBatchRequest(&payload, req);
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(RoundTrip(FrameType::kEstimateBatch, next_id_++, payload,
                             &header, &resp));
  if (header.status == WireStatus::kRejected) {
    return Status::OutOfRange("rejected: " + resp);
  }
  if (header.status != WireStatus::kOk) {
    return Status::Internal(resp.empty() ? "batch failed" : resp);
  }
  DS_RETURN_NOT_OK(ParseBatchResponse(resp, out));
  if (out->size() != sqls.size()) {
    return Status::ParseError(
        "batch response has " + std::to_string(out->size()) +
        " items, expected " + std::to_string(sqls.size()));
  }
  return Status::OK();
}

Result<std::string> NetClient::Stats() {
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(
      RoundTrip(FrameType::kStats, next_id_++, "", &header, &resp));
  if (header.status != WireStatus::kOk) {
    return Status::Internal("STATS failed: " + resp);
  }
  return resp;
}

Status NetClient::SendEstimate(uint64_t request_id, std::string_view sketch,
                               std::string_view sql) {
  EstimateRequest req;
  req.sketch.assign(sketch);
  req.sql.assign(sql);
  std::string payload;
  AppendEstimateRequest(&payload, req);
  std::string frame;
  AppendFrame(&frame, FrameType::kEstimate, WireStatus::kOk, request_id,
              payload);
  return WriteAll(frame);
}

Result<NetClient::Response> NetClient::ReadResponse() {
  FrameHeader header;
  std::string payload;
  DS_RETURN_NOT_OK(ReadFrame(&header, &payload));
  Response resp;
  resp.request_id = header.request_id;
  resp.type = header.type;
  resp.status = header.status;
  if (header.type == FrameType::kEstimate &&
      header.status == WireStatus::kOk) {
    ByteReader r(payload);
    if (!r.ReadF64(&resp.value) || !r.empty()) {
      return Status::ParseError("malformed ESTIMATE response payload");
    }
  } else {
    resp.message = std::move(payload);
  }
  return resp;
}

#else  // !DS_NET_CLIENT_POSIX

Result<NetClient> NetClient::Connect(const std::string&, uint16_t) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::Hello(std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::Ping() {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Result<double> NetClient::Estimate(std::string_view, std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::EstimateBatch(std::string_view,
                                const std::vector<std::string>&,
                                std::vector<Result<double>>*) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Result<std::string> NetClient::Stats() {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::SendEstimate(uint64_t, std::string_view,
                               std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Result<NetClient::Response> NetClient::ReadResponse() {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::WriteAll(std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::ReadFrame(FrameHeader*, std::string*) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::RoundTrip(FrameType, uint64_t, std::string_view,
                            FrameHeader*, std::string*) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}

#endif  // DS_NET_CLIENT_POSIX

}  // namespace ds::net

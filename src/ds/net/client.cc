#include "ds/net/client.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <cerrno>
#define DS_NET_CLIENT_POSIX 1
#endif

namespace ds::net {

#if defined(DS_NET_CLIENT_POSIX)

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port) {
  util::UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' (IPv4 dotted quad)");
  }
  if (connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NetClient client(std::move(fd));
  DS_RETURN_NOT_OK(client.WriteAll(std::string_view(kMagic, kMagicSize)));
  return client;
}

Status NetClient::WriteAll(std::string_view bytes) {
  if (!fd_.valid()) return Status::IOError("client is disconnected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd_.get(), bytes.data() + off,
                            bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fd_.reset();
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status NetClient::ReadFrame(FrameHeader* header, std::string* payload) {
  if (!fd_.valid()) return Status::IOError("client is disconnected");
  char chunk[16 * 1024];
  // First the header, then — once the payload size is known — the payload.
  while (true) {
    if (rbuf_.size() >= kFrameHeaderSize) {
      DS_RETURN_NOT_OK(DecodeFrameHeader(rbuf_.data(), header));
      const size_t total = kFrameHeaderSize + header->payload_size;
      if (rbuf_.size() >= total) {
        payload->assign(rbuf_, kFrameHeaderSize, header->payload_size);
        rbuf_.erase(0, total);
        return Status::OK();
      }
    }
    const ssize_t n = read(fd_.get(), chunk, sizeof(chunk));
    if (n > 0) {
      rbuf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fd_.reset();
    return n == 0 ? Status::IOError("server closed the connection")
                  : Status::IOError(std::string("read: ") +
                                    std::strerror(errno));
  }
}

Status NetClient::RoundTrip(FrameType type, uint64_t request_id,
                            std::string_view payload,
                            FrameHeader* resp_header,
                            std::string* resp_payload, uint16_t flags) {
  std::string frame;
  AppendFrame(&frame, type, WireStatus::kOk, request_id, payload, flags);
  DS_RETURN_NOT_OK(WriteAll(frame));
  DS_RETURN_NOT_OK(ReadFrame(resp_header, resp_payload));
  if (resp_header->request_id != request_id) {
    fd_.reset();  // stream is out of sync; nothing downstream is trustworthy
    return Status::Internal(
        "response id " + std::to_string(resp_header->request_id) +
        " does not match request id " + std::to_string(request_id) +
        " (mixing pipelined and synchronous calls?)");
  }
  if (resp_header->type != type) {
    fd_.reset();
    return Status::Internal("response frame type does not match request");
  }
  return Status::OK();
}

Status NetClient::Hello(std::string_view tenant) {
  std::string payload;
  AppendString16(&payload, tenant);
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(
      RoundTrip(FrameType::kHello, next_id_++, payload, &header, &resp));
  if (header.status != WireStatus::kOk) {
    return Status::Internal("HELLO failed: " + resp);
  }
  return Status::OK();
}

Status NetClient::Ping() {
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(
      RoundTrip(FrameType::kPing, next_id_++, "", &header, &resp));
  if (header.status != WireStatus::kOk) {
    return Status::Internal("PING failed: " + resp);
  }
  return Status::OK();
}

NetClient::PendingTrace NetClient::BeginTrace() {
  PendingTrace trace;
  if (tracer_ == nullptr) return trace;
  trace.trace_id = tracer_->StartTrace();
  if (trace.trace_id == 0) return trace;
  // The span id is allocated before the send so the server can nest its
  // spans under it; the span itself is recorded once the response lands.
  trace.span_id = tracer_->NextSpanId();
  trace.start_us = obs::TraceRecorder::NowUs();
  return trace;
}

void NetClient::FinishTrace(const PendingTrace& trace, uint64_t value) {
  if (trace.trace_id == 0 || tracer_ == nullptr) return;
  obs::SpanRecord record;
  record.trace_id = trace.trace_id;
  record.span_id = trace.span_id;
  record.parent_id = 0;  // the trace's root: the client's view of the RPC
  record.start_us = trace.start_us;
  record.duration_us = obs::TraceRecorder::NowUs() - trace.start_us;
  record.value = value;
  record.SetName("client_estimate");
  tracer_->Record(record);
}

Result<double> NetClient::Estimate(std::string_view sketch,
                                   std::string_view sql) {
  EstimateRequest req;
  req.sketch.assign(sketch);
  req.sql.assign(sql);
  const PendingTrace trace = BeginTrace();
  std::string payload;
  uint16_t flags = 0;
  if (trace.trace_id != 0) {
    AppendTraceContext(&payload, trace.trace_id, trace.span_id);
    flags |= kFlagTraceContext;
  }
  AppendEstimateRequest(&payload, req);
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(RoundTrip(FrameType::kEstimate, next_id_++, payload,
                             &header, &resp, flags));
  FinishTrace(trace, static_cast<uint64_t>(header.status));
  switch (header.status) {
    case WireStatus::kOk: {
      ByteReader r(resp);
      double value = 0.0;
      if (!r.ReadF64(&value) || !r.empty()) {
        return Status::ParseError("malformed ESTIMATE response payload");
      }
      return value;
    }
    case WireStatus::kRejected:
      return Status::OutOfRange("rejected: " + resp);
    case WireStatus::kError:
      break;
  }
  return Status::Internal(resp.empty() ? "estimate failed" : resp);
}

Status NetClient::EstimateBatch(std::string_view sketch,
                                const std::vector<std::string>& sqls,
                                std::vector<Result<double>>* out) {
  EstimateBatchRequest req;
  req.sketch.assign(sketch);
  req.sqls = sqls;
  const PendingTrace trace = BeginTrace();
  std::string payload;
  uint16_t flags = 0;
  if (trace.trace_id != 0) {
    AppendTraceContext(&payload, trace.trace_id, trace.span_id);
    flags |= kFlagTraceContext;
  }
  AppendEstimateBatchRequest(&payload, req);
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(RoundTrip(FrameType::kEstimateBatch, next_id_++, payload,
                             &header, &resp, flags));
  FinishTrace(trace, sqls.size());
  if (header.status == WireStatus::kRejected) {
    return Status::OutOfRange("rejected: " + resp);
  }
  if (header.status != WireStatus::kOk) {
    return Status::Internal(resp.empty() ? "batch failed" : resp);
  }
  DS_RETURN_NOT_OK(ParseBatchResponse(resp, out));
  if (out->size() != sqls.size()) {
    return Status::ParseError(
        "batch response has " + std::to_string(out->size()) +
        " items, expected " + std::to_string(sqls.size()));
  }
  return Status::OK();
}

Result<std::string> NetClient::Stats() {
  FrameHeader header;
  std::string resp;
  DS_RETURN_NOT_OK(
      RoundTrip(FrameType::kStats, next_id_++, "", &header, &resp));
  if (header.status != WireStatus::kOk) {
    return Status::Internal("STATS failed: " + resp);
  }
  return resp;
}

Status NetClient::SendEstimate(uint64_t request_id, std::string_view sketch,
                               std::string_view sql) {
  EstimateRequest req;
  req.sketch.assign(sketch);
  req.sql.assign(sql);
  const PendingTrace trace = BeginTrace();
  std::string payload;
  uint16_t flags = 0;
  if (trace.trace_id != 0) {
    AppendTraceContext(&payload, trace.trace_id, trace.span_id);
    flags |= kFlagTraceContext;
    // Closed by ReadResponse when the matching id comes back; a dropped
    // connection simply abandons the entry.
    pending_traces_[request_id] = trace;
  }
  AppendEstimateRequest(&payload, req);
  std::string frame;
  AppendFrame(&frame, FrameType::kEstimate, WireStatus::kOk, request_id,
              payload, flags);
  return WriteAll(frame);
}

Result<NetClient::Response> NetClient::ReadResponse() {
  FrameHeader header;
  std::string payload;
  DS_RETURN_NOT_OK(ReadFrame(&header, &payload));
  Response resp;
  resp.request_id = header.request_id;
  resp.type = header.type;
  resp.status = header.status;
  if (header.type == FrameType::kEstimate &&
      header.status == WireStatus::kOk) {
    ByteReader r(payload);
    if (!r.ReadF64(&resp.value) || !r.empty()) {
      return Status::ParseError("malformed ESTIMATE response payload");
    }
  } else {
    resp.message = std::move(payload);
  }
  if (!pending_traces_.empty()) {
    if (auto it = pending_traces_.find(header.request_id);
        it != pending_traces_.end()) {
      FinishTrace(it->second, static_cast<uint64_t>(header.status));
      pending_traces_.erase(it);
    }
  }
  return resp;
}

Result<std::string> HttpGet(
    const std::string& host, uint16_t port, const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  util::UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' (IPv4 dotted quad)");
  }
  if (connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = write(fd.get(), request.data() + off,
                            request.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  std::string response;
  char chunk[16 * 1024];
  while (true) {
    const ssize_t n = read(fd.get(), chunk, sizeof(chunk));
    if (n > 0) {
      response.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    break;  // Connection: close — EOF ends the response
  }
  // "HTTP/1.1 200 OK" — the code sits between the first two spaces.
  const size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) {
    return Status::ParseError("malformed HTTP response");
  }
  const int code = std::atoi(response.c_str() + sp + 1);
  const size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status::ParseError("HTTP response has no header terminator");
  }
  std::string body = response.substr(body_at + 4);
  if (code < 200 || code >= 300) {
    return Status::Internal("HTTP " + std::to_string(code) + ": " + body);
  }
  return body;
}

#else  // !DS_NET_CLIENT_POSIX

Result<NetClient> NetClient::Connect(const std::string&, uint16_t) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::Hello(std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::Ping() {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Result<double> NetClient::Estimate(std::string_view, std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::EstimateBatch(std::string_view,
                                const std::vector<std::string>&,
                                std::vector<Result<double>>*) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Result<std::string> NetClient::Stats() {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::SendEstimate(uint64_t, std::string_view,
                               std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Result<NetClient::Response> NetClient::ReadResponse() {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::WriteAll(std::string_view) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::ReadFrame(FrameHeader*, std::string*) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
Status NetClient::RoundTrip(FrameType, uint64_t, std::string_view,
                            FrameHeader*, std::string*, uint16_t) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}
NetClient::PendingTrace NetClient::BeginTrace() { return {}; }
void NetClient::FinishTrace(const PendingTrace&, uint64_t) {}
Result<std::string> HttpGet(
    const std::string&, uint16_t, const std::string&,
    const std::vector<std::pair<std::string, std::string>>&) {
  return Status::Unimplemented("ds::net client requires POSIX sockets");
}

#endif  // DS_NET_CLIENT_POSIX

}  // namespace ds::net

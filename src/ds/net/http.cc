#include "ds/net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ds::net {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 1024 * 1024;

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

std::optional<std::string> HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return std::nullopt;
}

bool HttpRequest::WantsClose() const {
  auto connection = Header("connection");
  return connection.has_value() && ToLower(*connection) == "close";
}

HttpParseResult ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                                 size_t* consumed) {
  const size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return buffer.size() > kMaxHeaderBytes ? HttpParseResult::kBad
                                           : HttpParseResult::kNeedMore;
  }
  if (head_end > kMaxHeaderBytes) return HttpParseResult::kBad;

  const std::string_view head = buffer.substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "METHOD SP target SP HTTP/1.x"
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return HttpParseResult::kBad;
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return HttpParseResult::kBad;

  out->method = std::string(request_line.substr(0, sp1));
  out->path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out->headers.clear();
  out->body.clear();

  size_t content_length = 0;
  bool saw_content_length = false;
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    const size_t eol = rest.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return HttpParseResult::kBad;
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    if (name == "transfer-encoding") return HttpParseResult::kBad;
    if (name == "content-length") {
      // Duplicate Content-Length headers are a request-smuggling vector if
      // a fronting proxy ever honors a different copy than we do; reject
      // them outright rather than picking one.
      if (saw_content_length) return HttpParseResult::kBad;
      saw_content_length = true;
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed > kMaxBodyBytes) {
        return HttpParseResult::kBad;
      }
      content_length = static_cast<size_t>(parsed);
    }
    out->headers.emplace_back(std::move(name), std::move(value));
  }

  const size_t total = head_end + 4 + content_length;
  if (buffer.size() < total) return HttpParseResult::kNeedMore;
  out->body.assign(buffer.substr(head_end + 4, content_length));
  *consumed = total;
  return HttpParseResult::kParsed;
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool close) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %.*s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: %s\r\n"
                "\r\n",
                status, ReasonPhrase(status),
                static_cast<int>(content_type.size()), content_type.data(),
                body.size(), close ? "close" : "keep-alive");
  std::string out(head);
  out.append(body.data(), body.size());
  return out;
}

namespace {

/// Decodes the JSON string literal starting at `json[i]` (which must be
/// the opening quote). Returns the decoded value and advances `i` past the
/// closing quote, or nullopt on malformed input.
std::optional<std::string> DecodeJsonString(std::string_view json,
                                            size_t* i) {
  std::string out;
  size_t p = *i + 1;  // skip the opening quote
  while (p < json.size()) {
    const char c = json[p];
    if (c == '"') {
      *i = p + 1;
      return out;
    }
    if (c != '\\') {
      out.push_back(c);
      ++p;
      continue;
    }
    if (p + 1 >= json.size()) return std::nullopt;
    const char esc = json[p + 1];
    p += 2;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (p + 4 > json.size()) return std::nullopt;
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = json[p + k];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return std::nullopt;
        }
        p += 4;
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else {
          // SQL and sketch names are ASCII; pass the raw sequence through
          // so nothing is silently dropped.
          out += "\\u";
          out.append(json.substr(p - 4, 4));
        }
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;  // unterminated string
}

}  // namespace

std::optional<std::string> ExtractJsonStringField(std::string_view json,
                                                  std::string_view key) {
  // Scan top-level `"key"` occurrences; on each, expect `: "` next (with
  // whitespace). Quoted occurrences of the key inside other values are
  // skipped by the string decoder below.
  size_t i = 0;
  while (i < json.size()) {
    if (json[i] != '"') {
      ++i;
      continue;
    }
    size_t pos = i;
    auto name = DecodeJsonString(json, &pos);
    if (!name.has_value()) return std::nullopt;
    i = pos;
    if (*name != key) continue;
    while (i < json.size() && (json[i] == ' ' || json[i] == '\t' ||
                               json[i] == '\n' || json[i] == '\r')) {
      ++i;
    }
    if (i >= json.size() || json[i] != ':') continue;  // key inside a value
    ++i;
    while (i < json.size() && (json[i] == ' ' || json[i] == '\t' ||
                               json[i] == '\n' || json[i] == '\r')) {
      ++i;
    }
    if (i >= json.size() || json[i] != '"') return std::nullopt;
    return DecodeJsonString(json, &i);
  }
  return std::nullopt;
}

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace ds::net

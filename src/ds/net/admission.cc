#include "ds/net/admission.h"

#include <algorithm>

namespace ds::net {

bool TokenBucket::TryAcquire(double now_seconds, double n) {
  if (!primed_) {
    last_refill_ = now_seconds;
    primed_ = true;
  }
  if (now_seconds > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + (now_seconds - last_refill_) * rate_);
    last_refill_ = now_seconds;
  }
  if (tokens_ < n) return false;
  tokens_ -= n;
  return true;
}

bool AdmissionController::Admit(const std::string& tenant, double now_seconds,
                                double cost) {
  util::MutexLock lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    // A tenant without an explicit SetTenantLimit override gets the
    // default bucket — or a free pass when defaults are disabled.
    if (!enabled()) return true;
    const double burst = options_.tenant_burst > 0 ? options_.tenant_burst
                                                   : options_.tenant_rate;
    it = buckets_.emplace(tenant, TokenBucket(options_.tenant_rate, burst))
             .first;
  }
  return it->second.TryAcquire(now_seconds, cost);
}

void AdmissionController::SetTenantLimit(const std::string& tenant,
                                         double rate, double burst) {
  util::MutexLock lock(mu_);
  buckets_.insert_or_assign(tenant, TokenBucket(rate, burst));
}

}  // namespace ds::net

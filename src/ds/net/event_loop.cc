#include "ds/net/event_loop.h"

#include <algorithm>
#include <chrono>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#include <cerrno>
#include <cstring>
#endif

namespace ds::net {

#if defined(__linux__)

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status EventLoop::Init() {
  epoll_fd_.reset(epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  wake_fd_.reset(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd_.valid()) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  return Add(wake_fd_.get(), EPOLLIN, [this](uint32_t) { DrainWakeFd(); });
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(ADD): ") +
                            std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<IoCallback>(std::move(callback));
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(MOD): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Post(std::function<void()> task) {
  {
    util::MutexLock lock(mu_);
    if (stopped_) return;  // owner is tearing down; nothing left to run it
    tasks_.push_back(PostedTask{SteadyNowUs(), std::move(task)});
  }
  Wake();
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = write(wake_fd_.get(), &one, sizeof(one));
}

void EventLoop::DrainWakeFd() {
  uint64_t count;
  while (read(wake_fd_.get(), &count, sizeof(count)) > 0) {
  }
}

void EventLoop::RunPostedTasks() {
  std::vector<PostedTask> tasks;
  {
    util::MutexLock lock(mu_);
    tasks.swap(tasks_);
  }
  if (tasks.empty()) return;
  if (lag_us_ != nullptr) {
    // One clock read amortized over the batch: every task in it became
    // runnable no later than now, so the recorded lag is an upper bound
    // only by the batch's own execution order.
    const int64_t now = SteadyNowUs();
    for (const PostedTask& task : tasks) {
      lag_us_->Record(
          static_cast<uint64_t>(std::max<int64_t>(0, now - task.posted_us)));
    }
  }
  for (auto& task : tasks) task.fn();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    {
      util::MutexLock lock(mu_);
      if (stopped_) break;
    }
    const int n = epoll_wait(epoll_fd_.get(), events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; the owner will notice on join
    }
    if (wakeups_ != nullptr) wakeups_->Add();
    for (int i = 0; i < n; ++i) {
      // Look the handler up per event: an earlier callback in this batch
      // may have Remove()d this fd (e.g. closed the connection).
      auto it = handlers_.find(events[i].data.fd);
      if (it == handlers_.end()) continue;
      // Keep the callback alive across the call even if it removes itself.
      std::shared_ptr<IoCallback> handler = it->second;
      (*handler)(events[i].events);
    }
    RunPostedTasks();
  }
  // Run what was posted before the stop flag landed, then drop the rest:
  // Post() rejects new tasks once stopped_ is set.
  RunPostedTasks();
}

void EventLoop::Stop() {
  {
    util::MutexLock lock(mu_);
    stopped_ = true;
  }
  Wake();
}

#else  // !__linux__

Status EventLoop::Init() {
  return Status::Unimplemented("ds::net requires Linux (epoll/eventfd)");
}
Status EventLoop::Add(int, uint32_t, IoCallback) {
  return Status::Unimplemented("ds::net requires Linux");
}
Status EventLoop::Modify(int, uint32_t) {
  return Status::Unimplemented("ds::net requires Linux");
}
void EventLoop::Remove(int) {}
void EventLoop::Post(std::function<void()>) {}
void EventLoop::Run() {}
void EventLoop::Stop() {}

#endif  // __linux__

}  // namespace ds::net

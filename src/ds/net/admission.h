// Per-tenant admission control for the network front-end.
//
// Every connection is owned by a tenant (declared via the HELLO frame or
// the X-DS-Tenant HTTP header; unidentified connections share the default
// tenant). Each tenant gets a token bucket: `rate` tokens per second
// refill, at most `burst` banked. A request that finds no token is shed
// immediately with an explicit REJECTED response — the server never queues
// on behalf of an over-limit tenant, so one chatty tenant cannot grow the
// shared queues and tax everyone else's latency.
//
// Time is an explicit parameter (seconds on any monotonic base), which
// keeps the arithmetic deterministic under test and lets the server feed
// every check from one steady_clock read per event-loop wakeup.

#ifndef DS_NET_ADMISSION_H_
#define DS_NET_ADMISSION_H_

#include <string>
#include <unordered_map>

#include "ds/util/thread_annotations.h"

namespace ds::net {

/// Classic token bucket. Not thread-safe on its own — AdmissionController
/// serializes access; standalone use (tests) is single-threaded.
class TokenBucket {
 public:
  /// `rate` tokens/second, at most `burst` banked. The bucket starts full.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Takes `n` tokens if available at `now_seconds`. Time moving backwards
  /// (clock reuse across tests) refills nothing but never errors.
  bool TryAcquire(double now_seconds, double n = 1.0);

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0;
  bool primed_ = false;  // first TryAcquire anchors the refill clock
};

struct AdmissionOptions {
  /// Per-tenant refill rate in requests/second; <= 0 disables admission
  /// control entirely (every request admitted).
  double tenant_rate = 0;

  /// Per-tenant bucket capacity; <= 0 defaults to tenant_rate (one
  /// second's worth of burst).
  double tenant_burst = 0;
};

/// Tenant-name -> token-bucket map, shared by all event-loop threads. The
/// mutex is uncontended in practice (a few dozen ns per request) because
/// each check is a handful of arithmetic ops; a lock-free design is not
/// worth its complexity at sketch-serving request rates.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  /// True when `tenant` may spend `cost` requests now. Unknown tenants get
  /// a fresh bucket at the default rate on first sight.
  bool Admit(const std::string& tenant, double now_seconds, double cost = 1.0)
      DS_EXCLUDES(mu_);

  /// Overrides one tenant's limits (e.g. from future config); replaces any
  /// existing bucket, so banked tokens reset to the new burst.
  void SetTenantLimit(const std::string& tenant, double rate, double burst)
      DS_EXCLUDES(mu_);

  bool enabled() const { return options_.tenant_rate > 0; }

 private:
  AdmissionOptions options_;
  util::Mutex mu_{util::LockRank::kNetAdmissionBuckets};
  std::unordered_map<std::string, TokenBucket> buckets_ DS_GUARDED_BY(mu_);
};

}  // namespace ds::net

#endif  // DS_NET_ADMISSION_H_

// NetServer: the networked, multi-tenant front-end over a SketchServer.
//
// Architecture (one box per thread):
//
//   client sockets                    batching core (ds::serve)
//        |                                   ^
//   +----v-----------+   SubmitAsync         |
//   | worker 0       |  (shard hint 0) +-----+------+
//   |  epoll loop    +---------------->| SketchServer|--> workers, NN
//   |  accept+io     |<----Post()------+  queues     |
//   +----------------+   completion    +-----^------+
//   | worker 1       |  (shard hint 1)       |
//   |  epoll loop    +----------------------->
//   +----------------+
//
// Each worker thread owns one edge-triggered epoll loop, accepts
// connections (the listening socket is registered in every loop, with
// EPOLLEXCLUSIVE where available so the kernel wakes one worker per
// pending accept), parses both wire protocols (binary "DSKB" frames and
// HTTP/1.1 — see ds/net/protocol.h), and submits estimate work into the
// SketchServer with its own index as the queue-shard hint, so a
// connection's requests stay on the queue shard drained by workers
// co-located with its event loop. Completions are posted back to the
// owning loop; response bytes are only ever written by the worker that
// owns the connection, so connection state needs no locks.
//
// Workers are pinned one-per-physical-core via ds/util/cpu_topology
// (best-effort: pinning failures are ignored — a correctness-neutral
// optimization, see that header).
//
// Overload behavior: requests past a tenant's token bucket or past the
// SketchServer's queue capacity are answered immediately with an explicit
// REJECTED response (HTTP 429). Nothing is queued unboundedly — the
// pending work is bounded by the serve-layer queue capacity plus one
// in-flight batch per connection — so p99 latency of admitted requests
// stays flat while overload is shed.
//
// Metrics (registered in the backend's registry by default, so one
// /metrics scrape sees both layers):
//   ds_net_connections_total / ds_net_connections_active
//   ds_net_requests_total              estimate requests received (batch
//                                      items count individually)
//   ds_net_responses_total{status=ok|error|rejected}
//   ds_net_http_requests_total, ds_net_protocol_errors_total
//   ds_net_bytes_read_total / ds_net_bytes_written_total
//   ds_net_uptime_seconds, ds_build_info{git_sha,...}
//   ds_net_loop_wakeups_total{loop=i} / ds_net_loop_lag_us{loop=i}
//   ds_net_tenant_requests_total{tenant=...} (+ completed/rejected/shed
//   and a per-tenant latency histogram — the /statusz ledger)
// Invariant after a drained shutdown:
//   ds_net_requests_total == sum over status of ds_net_responses_total
// (the CI integration smoke asserts exactly this from a live scrape).
//
// Admin plane (same HTTP listener, backed by the same private registry):
//   GET /healthz   liveness ("ok")
//   GET /readyz    readiness: 200 "ready", or 503 "draining" after
//                  BeginDrain() (SIGTERM grace) — load balancers stop
//                  routing while in-flight work finishes
//   GET /statusz   JSON: build info, uptime, workers, connections, the
//                  per-tenant ledger, serve totals (&format=text for
//                  dsctl top)
//   GET /tracez    flight-recorder view (recent + slowest + exemplars);
//                  ?format=chrome returns the span ring as Chrome
//                  trace-event JSON for about:tracing / Perfetto
//
// Trace propagation: binary frames carry a trace context behind
// kFlagTraceContext; HTTP requests carry the same context as the
// X-DS-Trace header. Both adopt the caller's trace id, record net_decode /
// net_admission / net_write spans server-side, and hand the context to the
// serve layer so one wire request yields one coherent trace.

#ifndef DS_NET_SERVER_H_
#define DS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ds/net/admission.h"
#include "ds/net/protocol.h"
#include "ds/obs/metrics.h"
#include "ds/serve/server.h"
#include "ds/util/fd.h"
#include "ds/util/status.h"
#include "ds/util/thread_annotations.h"

namespace ds::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";

  /// 0 binds an ephemeral port; read the actual one from port().
  uint16_t port = 0;

  /// Event-loop threads. 0 = one per available physical core (respecting
  /// the process affinity mask / cgroup limits).
  size_t num_workers = 0;

  /// Pin each worker to its planned CPU (see PlanWorkerCpus). Best-effort.
  bool pin_threads = true;

  /// Tenant for connections that never send HELLO / X-DS-Tenant.
  std::string default_tenant = "default";

  /// Per-tenant admission control; rate <= 0 admits everything.
  AdmissionOptions admission;

  /// Accepted sockets beyond this are closed immediately.
  size_t max_connections = 1024;

  /// Registry for the ds_net_* instruments. Null = the backend's registry
  /// (recommended: one scrape shows the whole serving path).
  obs::Registry* metrics_registry = nullptr;
};

/// The ds_net_* instruments. Separate from the server so tests can
/// construct one against a scratch registry.
struct NetMetrics {
  explicit NetMetrics(obs::Registry* registry);

  obs::Counter& connections;
  obs::Gauge& active_connections;
  obs::Counter& requests;
  obs::Counter& responses_ok;
  obs::Counter& responses_error;
  obs::Counter& responses_rejected;
  obs::Counter& http_requests;
  obs::Counter& protocol_errors;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  /// ds_build_info{git_sha,build_type}: constant 1 — the labels carry the
  /// information, the standard Prometheus build-info idiom.
  obs::Gauge& build_info;
  /// ds_net_uptime_seconds; refreshed on every admin-plane request.
  obs::Gauge& uptime_seconds;

  obs::Counter& Response(WireStatus status);
};

class NetServer {
 public:
  /// `backend` is borrowed and must outlive this server. Call Start() to
  /// bind and spin up the workers.
  NetServer(serve::SketchServer* backend, NetServerOptions options = {});

  /// Stops (drains in-flight requests) if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the worker threads. Errors leave the
  /// server stopped (safe to destroy). Unimplemented off Linux.
  Status Start();

  /// Graceful shutdown: stop accepting, wait for in-flight estimates to
  /// complete (bounded), stop the loops, join, close every connection.
  /// Idempotent. The backend keeps running — stop it after this returns
  /// (in-flight completions need its workers).
  void Stop();

  /// The bound TCP port (useful with options.port == 0). 0 before Start.
  uint16_t port() const { return port_; }

  size_t num_workers() const { return workers_.size(); }

  obs::Registry* registry() const { return registry_; }

  AdmissionController* admission() { return &admission_; }

  /// One tenant's row in the /statusz ledger. The instrument pointers are
  /// registry-owned and stable, so connections cache the row and count
  /// lock-free on the request path.
  struct TenantStats {
    obs::Counter* submitted = nullptr;   // requests received for the tenant
    obs::Counter* completed = nullptr;   // answered ok or error
    obs::Counter* rejected = nullptr;    // admission-control (rate) refusals
    obs::Counter* shed = nullptr;        // queue-full backpressure sheds
    obs::Histogram* latency_us = nullptr;  // receive -> response queued
  };

  /// The ledger row for `name`, created on first use. Thread-safe.
  TenantStats* Tenant(const std::string& name) DS_EXCLUDES(tenant_mu_);

  /// Flips /readyz to 503 "draining" so load balancers stop routing new
  /// work here while in-flight requests finish. One-way; Stop() implies it.
  void BeginDrain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Seconds since Start() succeeded (0 before).
  double UptimeSeconds() const;

  /// The /statusz document: build info, uptime, connection and response
  /// totals, and the per-tenant ledger with p50/p99 latency.
  std::string StatuszJson() const;
  /// Plain-text /statusz rendering (`?format=text`) — what `dsctl top`
  /// repaints.
  std::string StatuszText() const;

 private:
  friend struct Connection;
  struct Worker;

  Status StartListener();
  void AcceptReady(Worker* worker);
  double NowSeconds() const;

  serve::SketchServer* backend_;  // not owned
  NetServerOptions options_;
  obs::Registry* registry_;
  NetMetrics metrics_;
  AdmissionController admission_;

  util::UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> in_flight_{0};  // accepted estimates awaiting reply
  std::atomic<size_t> active_connections_{0};
  std::atomic<int64_t> start_us_{0};  // steady-clock us at successful Start

  mutable util::Mutex tenant_mu_{util::LockRank::kNetServerTenants};
  // std::map: node-stable TenantStats addresses plus sorted /statusz rows.
  std::map<std::string, TenantStats> tenants_ DS_GUARDED_BY(tenant_mu_);

  // serializes Start/Stop against concurrent Stop
  util::Mutex stop_mu_{util::LockRank::kNetServerStop};
  bool started_ DS_GUARDED_BY(stop_mu_) = false;
  bool stopped_ DS_GUARDED_BY(stop_mu_) = false;
};

}  // namespace ds::net

#endif  // DS_NET_SERVER_H_

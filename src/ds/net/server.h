// NetServer: the networked, multi-tenant front-end over a SketchServer.
//
// Architecture (one box per thread):
//
//   client sockets                    batching core (ds::serve)
//        |                                   ^
//   +----v-----------+   SubmitAsync         |
//   | worker 0       |  (shard hint 0) +-----+------+
//   |  epoll loop    +---------------->| SketchServer|--> workers, NN
//   |  accept+io     |<----Post()------+  queues     |
//   +----------------+   completion    +-----^------+
//   | worker 1       |  (shard hint 1)       |
//   |  epoll loop    +----------------------->
//   +----------------+
//
// Each worker thread owns one edge-triggered epoll loop, accepts
// connections (the listening socket is registered in every loop, with
// EPOLLEXCLUSIVE where available so the kernel wakes one worker per
// pending accept), parses both wire protocols (binary "DSKB" frames and
// HTTP/1.1 — see ds/net/protocol.h), and submits estimate work into the
// SketchServer with its own index as the queue-shard hint, so a
// connection's requests stay on the queue shard drained by workers
// co-located with its event loop. Completions are posted back to the
// owning loop; response bytes are only ever written by the worker that
// owns the connection, so connection state needs no locks.
//
// Workers are pinned one-per-physical-core via ds/util/cpu_topology
// (best-effort: pinning failures are ignored — a correctness-neutral
// optimization, see that header).
//
// Overload behavior: requests past a tenant's token bucket or past the
// SketchServer's queue capacity are answered immediately with an explicit
// REJECTED response (HTTP 429). Nothing is queued unboundedly — the
// pending work is bounded by the serve-layer queue capacity plus one
// in-flight batch per connection — so p99 latency of admitted requests
// stays flat while overload is shed.
//
// Metrics (registered in the backend's registry by default, so one
// /metrics scrape sees both layers):
//   ds_net_connections_total / ds_net_active_connections
//   ds_net_requests_total              estimate requests received (batch
//                                      items count individually)
//   ds_net_responses_total{status=ok|error|rejected}
//   ds_net_http_requests_total, ds_net_protocol_errors_total
//   ds_net_bytes_read_total / ds_net_bytes_written_total
// Invariant after a drained shutdown:
//   ds_net_requests_total == sum over status of ds_net_responses_total
// (the CI integration smoke asserts exactly this from a live scrape).

#ifndef DS_NET_SERVER_H_
#define DS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ds/net/admission.h"
#include "ds/net/protocol.h"
#include "ds/obs/metrics.h"
#include "ds/serve/server.h"
#include "ds/util/fd.h"
#include "ds/util/status.h"
#include "ds/util/thread_annotations.h"

namespace ds::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";

  /// 0 binds an ephemeral port; read the actual one from port().
  uint16_t port = 0;

  /// Event-loop threads. 0 = one per available physical core (respecting
  /// the process affinity mask / cgroup limits).
  size_t num_workers = 0;

  /// Pin each worker to its planned CPU (see PlanWorkerCpus). Best-effort.
  bool pin_threads = true;

  /// Tenant for connections that never send HELLO / X-DS-Tenant.
  std::string default_tenant = "default";

  /// Per-tenant admission control; rate <= 0 admits everything.
  AdmissionOptions admission;

  /// Accepted sockets beyond this are closed immediately.
  size_t max_connections = 1024;

  /// Registry for the ds_net_* instruments. Null = the backend's registry
  /// (recommended: one scrape shows the whole serving path).
  obs::Registry* metrics_registry = nullptr;
};

/// The ds_net_* instruments. Separate from the server so tests can
/// construct one against a scratch registry.
struct NetMetrics {
  explicit NetMetrics(obs::Registry* registry);

  obs::Counter& connections;
  obs::Gauge& active_connections;
  obs::Counter& requests;
  obs::Counter& responses_ok;
  obs::Counter& responses_error;
  obs::Counter& responses_rejected;
  obs::Counter& http_requests;
  obs::Counter& protocol_errors;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;

  obs::Counter& Response(WireStatus status);
};

class NetServer {
 public:
  /// `backend` is borrowed and must outlive this server. Call Start() to
  /// bind and spin up the workers.
  NetServer(serve::SketchServer* backend, NetServerOptions options = {});

  /// Stops (drains in-flight requests) if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the worker threads. Errors leave the
  /// server stopped (safe to destroy). Unimplemented off Linux.
  Status Start();

  /// Graceful shutdown: stop accepting, wait for in-flight estimates to
  /// complete (bounded), stop the loops, join, close every connection.
  /// Idempotent. The backend keeps running — stop it after this returns
  /// (in-flight completions need its workers).
  void Stop();

  /// The bound TCP port (useful with options.port == 0). 0 before Start.
  uint16_t port() const { return port_; }

  size_t num_workers() const { return workers_.size(); }

  obs::Registry* registry() const { return registry_; }

  AdmissionController* admission() { return &admission_; }

 private:
  friend struct Connection;
  struct Worker;

  Status StartListener();
  void AcceptReady(Worker* worker);
  double NowSeconds() const;

  serve::SketchServer* backend_;  // not owned
  NetServerOptions options_;
  obs::Registry* registry_;
  NetMetrics metrics_;
  AdmissionController admission_;

  util::UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> accepting_{false};
  std::atomic<uint64_t> in_flight_{0};  // accepted estimates awaiting reply
  std::atomic<size_t> active_connections_{0};

  util::Mutex stop_mu_;  // serializes Start/Stop against concurrent Stop
  bool started_ DS_GUARDED_BY(stop_mu_) = false;
  bool stopped_ DS_GUARDED_BY(stop_mu_) = false;
};

}  // namespace ds::net

#endif  // DS_NET_SERVER_H_

// Minimal HTTP/1.1 support for the network front-end.
//
// The server speaks just enough HTTP for two endpoints — POST /estimate
// (JSON in, JSON out) and GET /metrics (Prometheus text exposition) — so
// that curl, a scraper, or a quick script can talk to a running ds_served
// without the binary client. This is deliberately not a web framework: no
// chunked transfer, no compression, no multipart; requests using those get
// a 400. Keep-alive works (HTTP/1.1 default); "Connection: close" is
// honored.
//
// The JSON helpers are equally minimal: ExtractJsonStringField pulls one
// top-level string field out of a request body without building a DOM,
// which is all POST /estimate needs ({"sketch": "...", "sql": "..."}).

#ifndef DS_NET_HTTP_H_
#define DS_NET_HTTP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ds/util/status.h"

namespace ds::net {

struct HttpRequest {
  std::string method;  // uppercase, e.g. "GET"
  std::string path;    // request target, e.g. "/estimate"
  std::string body;
  // Header names lowercased at parse time (HTTP headers are
  // case-insensitive); values are trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;

  /// Value of the (lowercased) header, or nullopt.
  std::optional<std::string> Header(std::string_view name) const;

  /// True when the client asked for "Connection: close".
  bool WantsClose() const;
};

/// Outcome of trying to parse one request from the front of `buffer`.
enum class HttpParseResult {
  kNeedMore,   // incomplete: keep the buffer, read more bytes
  kParsed,     // *out filled; *consumed bytes belong to this request
  kBad,        // malformed: answer 400 and close
};

/// Parses one request from `buffer` (which may hold pipelined follow-ups;
/// only the first request is consumed). Bodies require Content-Length;
/// Transfer-Encoding is rejected as kBad. Requests with headers larger
/// than 64 KiB or bodies larger than 1 MiB are kBad.
HttpParseResult ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                                 size_t* consumed);

/// Serializes a response with Content-Length and the given Content-Type.
/// `status` is e.g. 200; the reason phrase is derived from it.
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool close);

/// Extracts the string value of a top-level `"key": "value"` pair from a
/// JSON object, handling the standard escapes (\" \\ \/ \b \f \n \r \t and
/// \uXXXX for code points below U+0080; others are passed through
/// literally). Returns nullopt when the key is missing or not a string.
std::optional<std::string> ExtractJsonStringField(std::string_view json,
                                                  std::string_view key);

/// Escapes `value` for embedding in a JSON string literal.
std::string JsonEscape(std::string_view value);

}  // namespace ds::net

#endif  // DS_NET_HTTP_H_

// Wire protocol for the networked serving front-end (ds::net).
//
// A connection speaks one of two protocols, sniffed from its first bytes:
// clients that open with the 4-byte magic "DSKB" get the length-prefixed
// binary protocol below; anything else is treated as HTTP/1.1 (see
// ds/net/http.h). One listening port serves both.
//
// Binary framing — every message, both directions, is one frame:
//
//   offset  size  field
//   0       4     payload size (u32, little-endian; excludes this header)
//   4       1     frame type (FrameType)
//   5       1     status (WireStatus; requests always send kOk)
//   6       2     flags (bit 0x1 = trace context; other bits reserved,
//                 must be 0)
//   8       8     request id (u64; responses echo the request's id)
//   16      ...   payload
//
// Trace propagation: a frame with kFlagTraceContext set carries a 16-byte
// trace context — u64 trace id, u64 parent span id — immediately before
// the regular payload (and included in payload size). The flag's presence
// IS the sampled bit: an unsampled request simply omits the context. The
// server adopts the id, so client-side spans and server-side spans land in
// one coherent trace (see ds/obs/trace.h WireTraceContext).
//
// Frames are independent, so clients may pipeline: send N requests with
// distinct ids, then match responses by id as they arrive. The server
// answers frames of one connection in completion order, not submission
// order (micro-batching reorders), which is exactly why the id exists.
//
// Integers are little-endian; doubles are IEEE-754 binary64 in
// little-endian byte order. All strings are raw bytes with an explicit
// length prefix — nothing is NUL-terminated.
//
// Payload grammar per frame type (requests -> responses):
//   kHello:    str16 tenant            -> empty (status kOk)
//   kPing:     empty                   -> empty
//   kEstimate: str16 sketch, str32 sql -> f64 estimate          (kOk)
//                                      -> str payload = message (kError /
//                                                               kRejected)
//   kEstimateBatch: str16 sketch, u32 n, n x str32 sql
//              -> u32 n, n x { u8 ok, f64 value | str32 message }
//   kStats:    empty                   -> JSON metrics snapshot
//
// A frame whose payload exceeds kMaxPayloadBytes, whose type is unknown,
// or whose flags contain unknown bits is a protocol error; the server
// answers kError and closes the connection.

#ifndef DS_NET_PROTOCOL_H_
#define DS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ds/util/status.h"

namespace ds::net {

inline constexpr char kMagic[4] = {'D', 'S', 'K', 'B'};
inline constexpr size_t kMagicSize = 4;
inline constexpr size_t kFrameHeaderSize = 16;

/// Frame flag: the payload is prefixed with a 16-byte trace context
/// (u64 trace id, u64 parent span id). Presence == sampled.
inline constexpr uint16_t kFlagTraceContext = 0x1;
/// Every flag bit the protocol defines; anything else is a parse error.
inline constexpr uint16_t kKnownFlags = kFlagTraceContext;
inline constexpr size_t kTraceContextSize = 16;

/// Upper bound on a single frame's payload. Large enough for a generous
/// statement batch, small enough that a malicious length prefix cannot
/// make the server buffer gigabytes.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : uint8_t {
  kHello = 1,
  kPing = 2,
  kEstimate = 3,
  kEstimateBatch = 4,
  kStats = 5,
};

enum class WireStatus : uint8_t {
  kOk = 0,
  kError = 1,
  kRejected = 2,  // admission control / backpressure shed the request
};

/// True when `type` is one of the FrameType enumerators.
bool IsKnownFrameType(uint8_t type);

/// Stable lowercase name ("ok", "error", "rejected") — used as the
/// `status` label value of ds_net_responses_total.
const char* WireStatusName(WireStatus status);

struct FrameHeader {
  uint32_t payload_size = 0;
  FrameType type = FrameType::kPing;
  WireStatus status = WireStatus::kOk;
  uint16_t flags = 0;
  uint64_t request_id = 0;
};

// ---- Primitive encoding (little-endian, append-to-string) -------------------

void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendF64(std::string* out, double v);
/// u16 length + bytes. Truncates nothing: callers must pre-check length.
void AppendString16(std::string* out, std::string_view s);
/// u32 length + bytes.
void AppendString32(std::string* out, std::string_view s);

/// Bounds-checked cursor over a received payload. Every Read* returns
/// false (leaving the output untouched) instead of reading past the end —
/// parsing code never touches bytes it was not given.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v);
  bool ReadU16(uint16_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadF64(double* v);
  bool ReadString16(std::string* s);
  bool ReadString32(std::string* s);

  size_t remaining() const { return data_.size() - off_; }
  bool empty() const { return remaining() == 0; }

 private:
  bool Take(size_t n, const char** p);
  std::string_view data_;
  size_t off_ = 0;
};

// ---- Frames -----------------------------------------------------------------

/// Appends a complete frame (header with payload_size = payload.size(),
/// then the payload) to `out`. `flags` must be within kKnownFlags; a
/// kFlagTraceContext frame's payload must start with the 16-byte trace
/// context (see AppendTraceContext).
void AppendFrame(std::string* out, FrameType type, WireStatus status,
                 uint64_t request_id, std::string_view payload,
                 uint16_t flags = 0);

/// Decodes a header from exactly kFrameHeaderSize bytes. Errors on an
/// unknown type, unknown flag bits, or a payload size above
/// kMaxPayloadBytes.
Status DecodeFrameHeader(const char* data, FrameHeader* out);

/// Appends the 16-byte wire trace context (the kFlagTraceContext payload
/// prefix).
void AppendTraceContext(std::string* payload, uint64_t trace_id,
                        uint64_t parent_span);

/// Strips a leading trace context off `*payload` (advancing it past the 16
/// bytes) when `flags` has kFlagTraceContext set; otherwise leaves
/// everything untouched with both outputs zero. Errors when the flag is
/// set but the payload is too short.
Status ConsumeTraceContext(uint16_t flags, std::string_view* payload,
                           uint64_t* trace_id, uint64_t* parent_span);

// ---- Message payloads -------------------------------------------------------

struct EstimateRequest {
  std::string sketch;
  std::string sql;
};

void AppendEstimateRequest(std::string* payload, const EstimateRequest& req);
Status ParseEstimateRequest(std::string_view payload, EstimateRequest* out);

struct EstimateBatchRequest {
  std::string sketch;
  std::vector<std::string> sqls;
};

void AppendEstimateBatchRequest(std::string* payload,
                                const EstimateBatchRequest& req);
Status ParseEstimateBatchRequest(std::string_view payload,
                                 EstimateBatchRequest* out);

/// One batch-response item: `u8 ok` then the value or the error message.
void AppendBatchItem(std::string* payload, const Result<double>& result);

/// Parses a kEstimateBatch response payload into per-statement results
/// (errored items become Status::Internal with the carried message).
Status ParseBatchResponse(std::string_view payload,
                          std::vector<Result<double>>* out);

}  // namespace ds::net

#endif  // DS_NET_PROTOCOL_H_

// Build provenance baked in at compile time: git sha, build type, compiler.
//
// The sha is captured at CMake configure time (DS_BUILD_GIT_SHA compile
// definition on the deepsketch target) so a deployed binary identifies the
// exact source it was built from even when no .git directory is reachable
// at runtime. Surfaced as the ds_build_info{git_sha,...} gauge and on
// /statusz.

#ifndef DS_UTIL_BUILD_INFO_H_
#define DS_UTIL_BUILD_INFO_H_

namespace ds::util {

struct BuildInfo {
  const char* git_sha;     // short sha, or "unknown" outside a git checkout
  const char* build_type;  // CMAKE_BUILD_TYPE, or "unspecified"
  const char* compiler;    // compiler id + version
};

/// Static build provenance; fields are never null.
const BuildInfo& GetBuildInfo();

}  // namespace ds::util

#endif  // DS_UTIL_BUILD_INFO_H_

#include "ds/util/arena.h"

#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#define DS_ARENA_MMAP 1
#endif

#include "ds/util/contract.h"

namespace ds::util {

namespace {

constexpr size_t kHugePageSize = 2u << 20;

size_t RoundUp(size_t v, size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(const ArenaOptions& options) : options_(options) {
  DS_REQUIRE(options_.chunk_bytes > 0, "arena chunk_bytes must be positive");
}

Arena::~Arena() {
  for (const Chunk& c : chunks_) {
#if defined(DS_ARENA_MMAP)
    if (c.mmapped) {
      ::munmap(c.base, c.size);
      continue;
    }
#endif
    ::operator delete(c.base);
  }
}

void Arena::AddChunk(size_t min_bytes) {
  Chunk chunk;
  // Round chunks to the huge-page size so MADV_HUGEPAGE can actually back
  // them with 2 MiB pages (a 100 KiB mapping never gets one).
  chunk.size = RoundUp(std::max(min_bytes, options_.chunk_bytes),
                       options_.huge_pages ? kHugePageSize : 4096);
#if defined(DS_ARENA_MMAP)
  if (!options_.force_heap) {
    void* mem = ::mmap(nullptr, chunk.size, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem != MAP_FAILED) {
      chunk.base = static_cast<uint8_t*>(mem);
      chunk.mmapped = true;
      ++stats_.mmap_chunks;
      if (options_.huge_pages &&
          ::madvise(mem, chunk.size, MADV_HUGEPAGE) == 0) {
        ++stats_.huge_page_chunks;
      }
    }
  }
#endif
  if (chunk.base == nullptr) {
    // Heap fallback (non-Linux, mmap failure, or force_heap). operator new
    // keeps the allocation visible to util/alloc counting.
    chunk.base = static_cast<uint8_t*>(::operator new(chunk.size));
    chunk.mmapped = false;
  }
  if (options_.prefault) {
    // First touch on the calling (pinned) thread: the kernel places each
    // page on this thread's NUMA node.
    std::memset(chunk.base, 0, chunk.size);
  }
  cur_ = chunk.base;
  end_ = chunk.base + chunk.size;
  chunks_.push_back(chunk);
  ++stats_.chunks;
  stats_.reserved_bytes += chunk.size;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  DS_REQUIRE(align != 0 && (align & (align - 1)) == 0 && align <= 4096,
             "arena alignment %zu must be a power of two <= 4096", align);
  if (bytes == 0) bytes = 1;
  uint8_t* aligned =
      reinterpret_cast<uint8_t*>(RoundUp(reinterpret_cast<uintptr_t>(cur_),
                                         align));
  if (aligned == nullptr || aligned + bytes > end_) {
    // New chunks are huge-page (or page) aligned, so alignment is free.
    AddChunk(bytes + align);
    aligned = reinterpret_cast<uint8_t*>(
        RoundUp(reinterpret_cast<uintptr_t>(cur_), align));
  }
  stats_.allocated_bytes += static_cast<size_t>(aligned - cur_) + bytes;
  cur_ = aligned + bytes;
  return aligned;
}

bool Arena::Contains(const void* p) const {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  for (const Chunk& c : chunks_) {
    if (b >= c.base && b < c.base + c.size) return true;
  }
  return false;
}

bool ArenaEnabledByEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("DS_ARENA");
    return v == nullptr || (std::strcmp(v, "0") != 0 &&
                            std::strcmp(v, "off") != 0);
  }();
  return enabled;
}

}  // namespace ds::util

// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Pcg32 so that data generation,
// workload generation, and training are reproducible from a single seed.
// Pcg32 implements the PCG-XSH-RR 64/32 generator (O'Neill, 2014).

#ifndef DS_UTIL_RANDOM_H_
#define DS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "ds/util/logging.h"

namespace ds::util {

/// PCG-XSH-RR 64/32: 64-bit state, 32-bit output. Satisfies
/// UniformRandomBitGenerator.
class Pcg32 {
 public:
  using result_type = uint32_t;

  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    Next();
    state_ += seed;
    Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT32_MAX; }

  result_type operator()() { return Next(); }

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint32_t Bounded(uint32_t bound) {
    DS_CHECK_GT(bound, 0u);
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform signed integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DS_CHECK_LE(lo, hi);
    uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    if (range == UINT64_MAX) return static_cast<int64_t>(Next64());
    uint64_t bound = range + 1;
    // 64-bit rejection sampling.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next64();
      if (r >= threshold) return lo + static_cast<int64_t>(r % bound);
    }
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return (Next64() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream position is predictable).
  double Normal();

  /// Bernoulli with probability p of true.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Bounded(static_cast<uint32_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) in selection order.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Splits off an independent generator (new stream derived from this one).
  Pcg32 Fork() { return Pcg32(Next64(), Next64()); }

 private:
  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
  }

  uint64_t Next64() {
    return (static_cast<uint64_t>(Next()) << 32) | Next();
  }

  uint64_t state_;
  uint64_t inc_;
};

/// Zipf(s) sampler over ranks {0, ..., n-1}: P(k) ∝ 1/(k+1)^s.
/// Precomputes the CDF once; each Sample() is a binary search.
class ZipfDistribution {
 public:
  /// n: number of distinct ranks; s: skew (0 = uniform, 1 = classic Zipf).
  ZipfDistribution(size_t n, double s);

  size_t n() const { return cdf_.size(); }
  double skew() const { return skew_; }

  /// Draws a rank in [0, n).
  size_t Sample(Pcg32* rng) const;

  /// Probability mass of rank k.
  double Pmf(size_t k) const;

 private:
  double skew_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace ds::util

#endif  // DS_UTIL_RANDOM_H_

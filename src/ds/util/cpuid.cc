#include "ds/util/cpuid.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define DS_CPUID_X86 1
#endif

namespace ds::util {

namespace {

#if defined(DS_CPUID_X86)

// XCR0 via the xgetbv instruction. Inline asm instead of _xgetbv so this
// file compiles without -mxsave (the whole point of this TU is running on
// baseline hardware).
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures Detect() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;

  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool cpu_avx = (ecx & (1u << 28)) != 0;
  const bool cpu_fma = (ecx & (1u << 12)) != 0;
  const bool cpu_f16c = (ecx & (1u << 29)) != 0;

  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  const bool have7 =
      __get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0;
  const bool cpu_avx2 = have7 && (ebx7 & (1u << 5)) != 0;
  const bool cpu_avx512f = have7 && (ebx7 & (1u << 16)) != 0;
  const bool cpu_avx512bw = have7 && (ebx7 & (1u << 30)) != 0;
  const bool cpu_avx512vl = have7 && (ebx7 & (1u << 31)) != 0;

  if (!osxsave) return f;  // OS saves no extended state: nothing above SSE
  const uint64_t xcr0 = ReadXcr0();
  // XCR0: bit1 SSE(XMM), bit2 AVX(YMM), bits 5..7 AVX-512 (opmask, ZMM
  // low/high). YMM state required for AVX/AVX2/FMA/F16C; ZMM for AVX-512.
  const bool ymm_saved = (xcr0 & 0x6) == 0x6;
  const bool zmm_saved = (xcr0 & 0xe6) == 0xe6;

  f.avx = cpu_avx && ymm_saved;
  f.avx2 = cpu_avx2 && ymm_saved;
  f.fma = cpu_fma && ymm_saved;
  f.f16c = cpu_f16c && ymm_saved;
  f.avx512f = cpu_avx512f && zmm_saved;
  f.avx512bw = cpu_avx512bw && zmm_saved;
  f.avx512vl = cpu_avx512vl && zmm_saved;
  return f;
}

#else  // non-x86: generic tier only

CpuFeatures Detect() { return CpuFeatures{}; }

#endif

}  // namespace

std::string CpuFeatures::ToString() const {
  std::string out;
  auto add = [&out](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(avx, "avx");
  add(avx2, "avx2");
  add(fma, "fma");
  add(f16c, "f16c");
  add(avx512f, "avx512f");
  add(avx512bw, "avx512bw");
  add(avx512vl, "avx512vl");
  if (out.empty()) out = "baseline";
  return out;
}

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

}  // namespace ds::util

#include "ds/util/lockdep.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>  // NOLINT(ds-lint): lockdep instruments ds::util::Mutex, so its own graph lock must be the raw primitive

#if defined(__GLIBC__)
#include <execinfo.h>
#define DS_LOCKDEP_HAS_BACKTRACE 1
#endif

namespace ds::util::lockdep {

namespace {

constexpr size_t kMaxClasses = kNumLockRanks;
constexpr int kMaxHeld = 16;     // deepest legal nesting is 3 today
constexpr int kMaxFrames = 16;   // captured acquisition stack depth

struct HeldLock {
  const LockRankEntry* cls = nullptr;
  int num_frames = 0;
  void* frames[kMaxFrames];
};

// The per-thread held-lock stack. Fixed-size: lockdep must not allocate on
// the lock path (it runs inside DS_NO_ALLOC-adjacent code and under TSan).
thread_local HeldLock t_held[kMaxHeld];
thread_local int t_num_held = 0;

// Acquired-after edge counts, indexed by LockRankIndex. Relaxed atomics:
// the counts are statistics; the first-observation stacks below are the
// evidence and take the report mutex.
std::atomic<uint64_t> g_edge_count[kMaxClasses][kMaxClasses];

struct EdgeStacks {
  bool recorded = false;
  int num_from = 0;
  int num_to = 0;
  void* from_frames[kMaxFrames];
  void* to_frames[kMaxFrames];
};

// First-observation stacks per edge, plus all violation reporting, are
// serialized by g_report_mu. It is a leaf-of-leaves: lockdep never holds it
// while touching any instrumented mutex.
std::mutex g_report_mu;  // NOLINT(ds-lint): see file comment on the include
EdgeStacks g_edge_stacks[kMaxClasses][kMaxClasses];

std::atomic<uint64_t> g_violations{0};
std::atomic<bool> g_abort_on_violation{true};

int CaptureStack(void** frames, int max_frames) {
#if DS_LOCKDEP_HAS_BACKTRACE
  return backtrace(frames, max_frames);
#else
  (void)frames;
  (void)max_frames;
  return 0;
#endif
}

void PrintStack(const char* label, void* const* frames, int num_frames) {
  std::fprintf(stderr, "  %s\n", label);
#if DS_LOCKDEP_HAS_BACKTRACE
  if (num_frames > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(frames), num_frames, 2);
    return;
  }
#endif
  (void)frames;
  std::fprintf(stderr, "    <no stack captured (frames=%d)>\n", num_frames);
}

/// DFS over the edge-count matrix: is `to` reachable from `from`?
bool Reachable(size_t from, size_t to, bool visited[kMaxClasses]) {
  if (from == to) return true;
  visited[from] = true;
  for (size_t next = 0; next < kMaxClasses; ++next) {
    if (visited[next]) continue;
    if (g_edge_count[from][next].load(std::memory_order_relaxed) == 0)
      continue;
    if (Reachable(next, to, visited)) return true;
  }
  return false;
}

void ReportViolation(const char* kind, const HeldLock& held,
                     const LockRankEntry* acquiring,
                     void* const* cur_frames, int cur_num_frames) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(g_report_mu);  // NOLINT(ds-lint): raw primitive, see file comment
    std::fprintf(stderr,
                 "\n=== ds lockdep: %s ===\n"
                 "acquiring '%s' (rank %d, %s)\n"
                 "  while holding '%s' (rank %d, %s)\n"
                 "lock order manifest: src/ds/util/lock_order.h\n",
                 kind, acquiring->name, acquiring->rank, acquiring->holder,
                 held.cls->name, held.cls->rank, held.cls->holder);
    PrintStack("stack of the acquisition being attempted:", cur_frames,
               cur_num_frames);
    PrintStack("stack that acquired the held lock:", held.frames,
               held.num_frames);
    const size_t hi = LockRankIndex(held.cls);
    const size_t ci = LockRankIndex(acquiring);
    // The reverse edge (acquiring -> held) is what makes this an ABBA: show
    // where it was first established, if it ever was.
    const EdgeStacks& reverse = g_edge_stacks[ci][hi];
    if (reverse.recorded) {
      std::fprintf(stderr,
                   "the opposite order ('%s' before '%s') was first "
                   "observed here:\n",
                   acquiring->name, held.cls->name);
      PrintStack("  held-side stack:", reverse.from_frames,
                 reverse.num_from);
      PrintStack("  acquire-side stack:", reverse.to_frames, reverse.num_to);
    }
    std::fflush(stderr);
  }
  if (g_abort_on_violation.load(std::memory_order_relaxed)) {
    std::abort();
  }
}

bool DefaultEnabled() {
  bool enabled = false;
#if !defined(NDEBUG)
  enabled = true;
#endif
#if defined(__SANITIZE_THREAD__)
  enabled = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  enabled = true;
#endif
#endif
  const char* env = std::getenv("DS_LOCKDEP");
  if (env != nullptr && env[0] != '\0') {
    enabled = !(env[0] == '0' && env[1] == '\0');
  }
  return enabled;
}

void AppendJsonEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out->push_back('\\');
    out->push_back(*p);
  }
}

}  // namespace

namespace internal {

std::atomic<bool> g_enabled{DefaultEnabled()};

void AcquireSlow(const LockRankEntry* cls, bool try_lock) {
  const size_t ci = LockRankIndex(cls);
  void* cur_frames[kMaxFrames];
  const int cur_num_frames = CaptureStack(cur_frames, kMaxFrames);

  for (int i = 0; i < t_num_held; ++i) {
    const HeldLock& held = t_held[i];
    const size_t hi = LockRankIndex(held.cls);
    const bool new_edge =
        g_edge_count[hi][ci].fetch_add(1, std::memory_order_relaxed) == 0;
    if (new_edge) {
      std::lock_guard<std::mutex> guard(g_report_mu);  // NOLINT(ds-lint): raw primitive, see file comment
      EdgeStacks& stacks = g_edge_stacks[hi][ci];
      if (!stacks.recorded) {
        stacks.recorded = true;
        stacks.num_from = held.num_frames;
        std::memcpy(stacks.from_frames, held.frames,
                    sizeof(void*) * static_cast<size_t>(held.num_frames));
        stacks.num_to = cur_num_frames;
        std::memcpy(stacks.to_frames, cur_frames,
                    sizeof(void*) * static_cast<size_t>(cur_num_frames));
      }
    }
    if (try_lock) continue;  // a successful trylock cannot deadlock
    if (cls->rank <= held.cls->rank) {
      ReportViolation("rank inversion (lock order violation)", held, cls,
                      cur_frames, cur_num_frames);
      continue;  // count-and-continue mode keeps going
    }
    if (new_edge) {
      // Ranks are a total order, so a rank-clean NEW edge can only close a
      // cycle through same-rank classes or stale edges; check anyway — the
      // graph is tiny and this branch runs once per distinct edge.
      bool visited[kMaxClasses] = {};
      if (Reachable(ci, hi, visited)) {
        ReportViolation("acquired-after cycle (potential deadlock)", held,
                        cls, cur_frames, cur_num_frames);
      }
    }
  }

  if (t_num_held < kMaxHeld) {
    HeldLock& slot = t_held[t_num_held];
    slot.cls = cls;
    slot.num_frames = cur_num_frames;
    std::memcpy(slot.frames, cur_frames,
                sizeof(void*) * static_cast<size_t>(cur_num_frames));
  }
  // Past kMaxHeld the depth is still tracked so releases rebalance, but the
  // overflowed entries carry no class (16-deep nesting would itself be a
  // finding worth hand-examining).
  ++t_num_held;
}

void ReleaseSlow(const LockRankEntry* cls) {
  // Releases may be out of LIFO order (MutexLock::Unlock mid-scope while an
  // outer lock stays held): remove the newest matching entry.
  for (int i = t_num_held - 1; i >= 0; --i) {
    if (i < kMaxHeld && t_held[i].cls == cls) {
      for (int j = i; j + 1 < t_num_held && j + 1 < kMaxHeld; ++j) {
        t_held[j] = t_held[j + 1];
      }
      --t_num_held;
      return;
    }
  }
  // No matching held entry: the lock was acquired while lockdep was
  // disarmed (or overflowed past kMaxHeld). Keep the depth sane.
  if (t_num_held > kMaxHeld) --t_num_held;
}

}  // namespace internal

bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void SetAbortOnViolation(bool abort_on_violation) {
  g_abort_on_violation.store(abort_on_violation, std::memory_order_relaxed);
}

uint64_t ViolationCount() {
  return g_violations.load(std::memory_order_relaxed);
}

std::string ObservedGraphJson() {
  std::string out;
  out.reserve(2048);
  out += "{\"classes\":[";
  for (size_t i = 0; i < kNumLockRanks; ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, kLockRankTable[i].name);
    out += "\",\"rank\":";
    out += std::to_string(kLockRankTable[i].rank);
    out += ",\"holder\":\"";
    AppendJsonEscaped(&out, kLockRankTable[i].holder);
    out += "\"}";
  }
  out += "],\"edges\":[";
  bool first = true;
  for (size_t from = 0; from < kMaxClasses; ++from) {
    for (size_t to = 0; to < kMaxClasses; ++to) {
      const uint64_t count =
          g_edge_count[from][to].load(std::memory_order_relaxed);
      if (count == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "{\"from\":\"";
      AppendJsonEscaped(&out, kLockRankTable[from].name);
      out += "\",\"to\":\"";
      AppendJsonEscaped(&out, kLockRankTable[to].name);
      out += "\",\"count\":";
      out += std::to_string(count);
      out += "}";
    }
  }
  out += "],\"violations\":";
  out += std::to_string(ViolationCount());
  out += "}";
  return out;
}

bool WriteObservedGraph(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ObservedGraphJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void ResetForTest() {
  std::lock_guard<std::mutex> guard(g_report_mu);  // NOLINT(ds-lint): raw primitive, see file comment
  for (size_t i = 0; i < kMaxClasses; ++i) {
    for (size_t j = 0; j < kMaxClasses; ++j) {
      g_edge_count[i][j].store(0, std::memory_order_relaxed);
      g_edge_stacks[i][j] = EdgeStacks{};
    }
  }
  g_violations.store(0, std::memory_order_relaxed);
}

}  // namespace ds::util::lockdep

#include "ds/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "ds/util/logging.h"

namespace ds::util {

double QError(double true_card, double estimated_card) {
  double t = std::max(true_card, 1.0);
  double e = std::max(estimated_card, 1.0);
  return std::max(t / e, e / t);
}

double Percentile(std::vector<double> values, double p) {
  DS_CHECK(!values.empty());
  DS_CHECK_GE(p, 0.0);
  DS_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  DS_CHECK(!values.empty());
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

QErrorSummary QErrorSummary::FromQErrors(std::vector<double> q) {
  DS_CHECK(!q.empty());
  QErrorSummary s;
  s.count = q.size();
  s.mean = Mean(q);
  std::sort(q.begin(), q.end());
  s.max = q.back();
  // Percentile() sorts again; operate on the sorted copy directly.
  auto pct = [&q](double p) {
    double rank = p / 100.0 * static_cast<double>(q.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, q.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return q[lo] * (1.0 - frac) + q[hi] * frac;
  };
  s.median = pct(50);
  s.p90 = pct(90);
  s.p95 = pct(95);
  s.p99 = pct(99);
  return s;
}

std::string FormatQ(double v) {
  char buf[64];
  if (v >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (v >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

std::string QErrorSummary::ToRow() const {
  std::ostringstream os;
  os << FormatQ(median) << " " << FormatQ(p90) << " " << FormatQ(p95) << " "
     << FormatQ(p99) << " " << FormatQ(max) << " " << FormatQ(mean);
  return os.str();
}

std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> width(header.size());
  for (size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    DS_CHECK_EQ(row.size(), header.size());
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit(header);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows) emit(row);
  return os.str();
}

}  // namespace ds::util

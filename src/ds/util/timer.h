// Wall-clock timing helper for the training-cost and latency benchmarks.

#ifndef DS_UTIL_TIMER_H_
#define DS_UTIL_TIMER_H_

#include <chrono>

namespace ds::util {

/// Monotonic stopwatch, running from construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ds::util

#endif  // DS_UTIL_TIMER_H_

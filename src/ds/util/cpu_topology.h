// CPU topology detection and thread placement for the serving workers.
//
// The network front-end runs one event-loop thread per core; throughput
// depends on those threads *staying* on their cores (warm caches, no
// cross-core queue bouncing) and on spreading them across physical cores
// before doubling up on hyperthread siblings. This helper answers the two
// questions that requires: which CPUs may this process run on (respecting
// cgroup/affinity masks — a container restricted to 4 of 64 CPUs must not
// plan 64 workers), and which of those CPUs share a physical core.
//
// Everything degrades gracefully: on a machine where /sys topology files
// are unreadable, core ids fall back to the CPU index (every CPU its own
// core); on non-Linux builds detection reports a single CPU and pinning is
// a no-op. Callers treat pinning as an optimization, never a correctness
// requirement.

#ifndef DS_UTIL_CPU_TOPOLOGY_H_
#define DS_UTIL_CPU_TOPOLOGY_H_

#include <cstddef>
#include <vector>

#include "ds/util/status.h"

namespace ds::util {

/// One CPU the current process is allowed to run on.
struct CpuInfo {
  int cpu = 0;      // kernel CPU index (the argument to pinning)
  int core_id = 0;  // physical core (hyperthread siblings share this)
  int package_id = 0;  // socket
};

struct CpuTopology {
  std::vector<CpuInfo> cpus;  // sorted by cpu index

  size_t num_cpus() const { return cpus.size(); }

  /// Distinct physical cores across the available CPUs.
  size_t num_cores() const;
};

/// Detects the CPUs available to this process (sched_getaffinity) and their
/// physical-core layout (/sys/devices/system/cpu/cpuN/topology). Never
/// fails: the fallback is a single CPU 0.
CpuTopology DetectCpuTopology();

/// Picks a CPU for each of `num_workers` workers: one worker per physical
/// core first (spreading across packages), then hyperthread siblings, then
/// wrapping round-robin when workers outnumber CPUs. Deterministic for a
/// given topology.
std::vector<int> PlanWorkerCpus(const CpuTopology& topology,
                                size_t num_workers);

/// Pins the calling thread to `cpu`. Returns OK on success or when pinning
/// is unsupported on this platform (a no-op there — see file comment);
/// errors only on a real affinity failure (e.g. the CPU left the cgroup
/// mask).
Status PinCurrentThreadToCpu(int cpu);

/// The CPU the calling thread is currently on, or -1 when unavailable.
int CurrentCpu();

}  // namespace ds::util

#endif  // DS_UTIL_CPU_TOPOLOGY_H_

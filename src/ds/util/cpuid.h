// Runtime CPU feature detection for the kernel dispatch tier (ds/nn).
//
// The build compiles every kernel tier the *compiler* supports
// (kernels_generic / kernels_avx2 / kernels_avx2_fma / kernels_avx512 —
// see src/CMakeLists.txt per-file flags); this header answers what the
// *machine the process landed on* supports, so the dispatch table in
// ds/nn/kernels.cc can pick the fastest tier that will not SIGILL.
//
// Detection follows the Intel SDM rules: a vector extension counts as
// usable only when the CPU reports it (CPUID) *and* the OS saves the
// corresponding register state across context switches (OSXSAVE + XCR0
// bits — a kernel that does not save ZMM state makes AVX-512 unusable even
// on AVX-512 silicon). On non-x86 builds every feature reports false and
// the generic tier runs.
//
// Thread-safety: DetectCpuFeatures computes once (thread-safe static) and
// returns a reference to the immutable result.

#ifndef DS_UTIL_CPUID_H_
#define DS_UTIL_CPUID_H_

#include <string>

namespace ds::util {

struct CpuFeatures {
  bool avx = false;
  bool avx2 = false;
  bool fma = false;      // FMA3
  bool f16c = false;     // half-precision convert (VCVTPH2PS / VCVTPS2PH)
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;

  /// "avx2 fma f16c ..." — for logs and the bench JSON envelope.
  std::string ToString() const;
};

/// The features usable on this machine (CPU + OS state saving). Computed
/// once per process.
const CpuFeatures& DetectCpuFeatures();

}  // namespace ds::util

#endif  // DS_UTIL_CPUID_H_

// Contract macros: machine-checked invariants for the hot paths.
//
// DS_CHECK (logging.h) stays the unconditional "state is corrupt, abort"
// assertion. This header adds *contracts* — declared pre/postconditions and
// invariants whose violation is reported through a configurable policy so a
// serving process can count-and-continue while tests turn violations into
// exceptions and CI turns them into aborts:
//
//   DS_REQUIRE(cond, fmt, ...)    precondition, always evaluated
//   DS_ENSURE(cond, fmt, ...)     postcondition, always evaluated
//   DS_INVARIANT(cond, fmt, ...)  internal state invariant, always evaluated
//   DS_DCHECK(cond, fmt, ...)     hot-path check; compiled out of plain
//                                 Release builds, active in Debug and in all
//                                 sanitizer builds (DS_SANITIZE=...)
//
// Every failed contract bumps a process-wide counter regardless of policy;
// the serving layer exports it as ds_contract_violations_total so a fleet
// can alert on contract pressure without scraping stderr. The failure
// message carries file:line, the failed expression, and a printf-formatted
// context string.
//
// DS_NO_ALLOC_BEGIN/END mark allocation-free regions. They are (1) scanned
// statically by tools/ds_lint.cc, which rejects allocation and
// container-growth calls inside the region (ResizeInPlace, the sanctioned
// warm-capacity grow-once API, is allowed), and (2) checked at runtime when
// armed via SetNoAllocEnforcement(true): leaving the region with a nonzero
// AllocCount() delta is a contract violation. Enforcement is off by default
// — warmup batches legitimately grow capacity, and the counter is
// process-wide, so tests arm it only around single-threaded steady-state
// sections.

#ifndef DS_UTIL_CONTRACT_H_
#define DS_UTIL_CONTRACT_H_

#include <cstdint>
#include <exception>

namespace ds::util {

enum class ContractKind : uint8_t {
  kRequire,
  kEnsure,
  kInvariant,
  kDcheck,
  kNoAlloc,
};

/// What a failed contract does after the counter is bumped and the message
/// is formatted.
enum class ContractPolicy : uint8_t {
  kAbort,  // print to stderr, abort() — the default (Google CHECK style)
  kThrow,  // throw ContractViolationError (tests, embedding hosts)
  kCount,  // print to stderr once per site burst, continue (resilient mode)
};

struct ContractViolation {
  ContractKind kind = ContractKind::kRequire;
  const char* file = "";
  int line = 0;
  const char* expression = "";
  const char* message = "";  // formatted context, "" when none
};

/// Thrown under ContractPolicy::kThrow.
class ContractViolationError : public std::exception {
 public:
  explicit ContractViolationError(const ContractViolation& v);
  const char* what() const noexcept override { return what_; }
  ContractKind kind() const { return kind_; }

 private:
  char what_[512];
  ContractKind kind_;
};

/// Violations observed since process start (bumped before any policy runs;
/// mirrored into the ds_contract_violations_total metric by the serving
/// layer's snapshot path).
uint64_t ContractViolationCount();

ContractPolicy GetContractPolicy();
/// Returns the previous policy. Thread-safe; affects the whole process.
ContractPolicy SetContractPolicy(ContractPolicy policy);

/// Optional hook invoked (after the counter bump, before the policy action)
/// for every violation; nullptr disables. Returns the previous handler.
using ContractObserver = void (*)(const ContractViolation&);
ContractObserver SetContractObserver(ContractObserver observer);

/// RAII guard that applies a policy for a scope (tests).
class ScopedContractPolicy {
 public:
  explicit ScopedContractPolicy(ContractPolicy policy)
      : previous_(SetContractPolicy(policy)) {}
  ~ScopedContractPolicy() { SetContractPolicy(previous_); }
  ScopedContractPolicy(const ScopedContractPolicy&) = delete;
  ScopedContractPolicy& operator=(const ScopedContractPolicy&) = delete;

 private:
  ContractPolicy previous_;
};

namespace internal {

/// Reports a failed contract: counts it, formats `fmt` (printf-style;
/// defaulted so the message-less DS_REQUIRE(cond) form compiles), then
/// applies the active policy. Returns only under kCount (or if a custom
/// observer swallowed a throw); callers must tolerate continuing with the
/// contract unsatisfied.
void ContractFailed(ContractKind kind, const char* file, int line,
                    const char* expression, const char* fmt = nullptr, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 5, 6)))
#endif
    ;

}  // namespace internal

// ---- Allocation-free regions ---------------------------------------------------

/// Global switch for runtime DS_NO_ALLOC enforcement (off by default).
bool NoAllocEnforcementEnabled();
/// Returns the previous value. Arm only around single-threaded steady-state
/// sections: AllocCount() is process-wide.
bool SetNoAllocEnforcement(bool enabled);

/// Scope guard behind DS_NO_ALLOC_BEGIN/END. When enforcement is armed and
/// allocation counting is available, a nonzero allocation delta over the
/// region raises a kNoAlloc contract violation.
class NoAllocRegion {
 public:
  NoAllocRegion(const char* file, int line);
  ~NoAllocRegion() {
    // Backstop for early returns. Under kThrow the violation would escape a
    // destructor, so it is swallowed here (the counter is still bumped);
    // normal flow closes the region explicitly via DS_NO_ALLOC_END.
    try {
      End();
    } catch (...) {
    }
  }
  NoAllocRegion(const NoAllocRegion&) = delete;
  NoAllocRegion& operator=(const NoAllocRegion&) = delete;

  /// Idempotent early close (DS_NO_ALLOC_END); the destructor is the
  /// backstop for early returns.
  void End();

 private:
  const char* file_;
  int line_;
  uint64_t start_count_ = 0;
  bool armed_ = false;
  bool ended_ = false;
};

}  // namespace ds::util

// DS_DCHECK is active in Debug builds and under any sanitizer; plain
// Release builds compile it to a no-op that still typechecks its arguments.
#if !defined(NDEBUG) || defined(DS_FORCE_DCHECKS) ||  \
    defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DS_DCHECK_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define DS_DCHECK_ENABLED 1
#else
#define DS_DCHECK_ENABLED 0
#endif
#else
#define DS_DCHECK_ENABLED 0
#endif

#define DS_CONTRACT_IMPL__(kind, cond, ...)                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ds::util::internal::ContractFailed(::ds::util::ContractKind::kind,   \
                                           __FILE__, __LINE__, #cond,        \
                                           ##__VA_ARGS__);                   \
    }                                                                        \
  } while (false)

/// Precondition on arguments/caller state. Always evaluated.
#define DS_REQUIRE(cond, ...) DS_CONTRACT_IMPL__(kRequire, cond, ##__VA_ARGS__)

/// Postcondition on results/exit state. Always evaluated.
#define DS_ENSURE(cond, ...) DS_CONTRACT_IMPL__(kEnsure, cond, ##__VA_ARGS__)

/// Internal consistency invariant. Always evaluated.
#define DS_INVARIANT(cond, ...) \
  DS_CONTRACT_IMPL__(kInvariant, cond, ##__VA_ARGS__)

#if DS_DCHECK_ENABLED
#define DS_DCHECK(cond, ...) DS_CONTRACT_IMPL__(kDcheck, cond, ##__VA_ARGS__)
#else
#define DS_DCHECK(cond, ...)                  \
  do {                                        \
    if (false && !(cond)) {                   \
      /* arguments must stay well-formed */   \
    }                                         \
  } while (false)
#endif

/// Opens an allocation-free region (see file comment). Must be paired with
/// DS_NO_ALLOC_END in the same scope; the guard also closes on scope exit.
#define DS_NO_ALLOC_BEGIN() \
  ::ds::util::NoAllocRegion ds_no_alloc_region__(__FILE__, __LINE__)

/// Closes the region opened by DS_NO_ALLOC_BEGIN.
#define DS_NO_ALLOC_END() ds_no_alloc_region__.End()

#endif  // DS_UTIL_CONTRACT_H_

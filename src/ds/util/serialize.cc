#include "ds/util/serialize.h"

#include <cstdio>

namespace ds::util {

Status BinaryWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  size_t written = buf_.empty() ? 0 : std::fwrite(buf_.data(), 1, buf_.size(), f);
  int close_rc = std::fclose(f);
  if (written != buf_.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot determine size of " + path);
  }
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  size_t read = buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return Status::IOError("short read from " + path);
  }
  return BinaryReader(std::move(buf));
}

Status BinaryReader::ReadString(std::string* out) {
  uint64_t n = 0;
  DS_RETURN_NOT_OK(ReadU64(&n));
  if (pos_ + n > buf_.size()) {
    return Status::OutOfRange("truncated string of length " +
                              std::to_string(n));
  }
  out->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadStringVector(std::vector<std::string>* out) {
  uint64_t n = 0;
  DS_RETURN_NOT_OK(ReadU64(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    DS_RETURN_NOT_OK(ReadString(&s));
    out->push_back(std::move(s));
  }
  return Status::OK();
}

}  // namespace ds::util

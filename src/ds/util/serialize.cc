#include "ds/util/serialize.h"

#include <atomic>
#include <cstdio>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace ds::util {

Status BinaryWriter::WriteToFile(const std::string& path) const {
  // Write to a unique sibling then rename into place: a concurrent reader
  // of `path` sees either the old complete file or the new complete file,
  // never a truncated one (sketches are re-published while being served).
  static std::atomic<uint64_t> counter{0};
#if defined(_WIN32)
  const long pid = _getpid();
#else
  const long pid = static_cast<long>(getpid());
#endif
  const std::string tmp = path + ".tmp." + std::to_string(pid) + "." +
                          std::to_string(counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + tmp);
  }
  size_t written = buf_.empty() ? 0 : std::fwrite(buf_.data(), 1, buf_.size(), f);
  int close_rc = std::fclose(f);
  if (written != buf_.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
#if defined(_WIN32)
    // Windows rename refuses to replace; retry after removing the target.
    std::remove(path.c_str());
    if (std::rename(tmp.c_str(), path.c_str()) == 0) return Status::OK();
#endif
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot determine size of " + path);
  }
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  size_t read = buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return Status::IOError("short read from " + path);
  }
  return BinaryReader(std::move(buf));
}

Status BinaryReader::ReadString(std::string* out) {
  uint64_t n = 0;
  DS_RETURN_NOT_OK(ReadU64(&n));
  // `pos_ + n` may wrap for a corrupt length; compare against the space
  // actually left instead.
  if (n > buf_.size() - pos_) {
    return Status::OutOfRange("truncated string of length " +
                              std::to_string(n));
  }
  out->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadStringVector(std::vector<std::string>* out) {
  uint64_t n = 0;
  DS_RETURN_NOT_OK(ReadU64(&n));
  // Every string costs at least its u64 length prefix.
  DS_RETURN_NOT_OK(CheckCount(n, sizeof(uint64_t)));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    DS_RETURN_NOT_OK(ReadString(&s));
    out->push_back(std::move(s));
  }
  return Status::OK();
}

}  // namespace ds::util

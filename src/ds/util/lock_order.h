// The lock-order manifest: every ds::util::Mutex that can be held
// concurrently with another is named here, with a numeric *rank* that fixes
// its position in the global acquisition order.
//
// Rule: a thread may only acquire a mutex whose rank is STRICTLY GREATER
// than the rank of every mutex it already holds. Outer locks (taken first,
// e.g. shutdown serialization) therefore have low ranks; leaf locks (never
// held while taking another) have high ranks. Two mutexes with the same
// rank can never be held together — which is why per-shard locks share one
// rank: "shard mutexes are never held two at a time" becomes checkable.
//
// This table is the single machine-readable source of truth, consumed by
// three enforcement layers (see DESIGN.md §10):
//
//   - compile time:  ds::util::Mutex construction takes a LockRank, so an
//                    unlisted concurrent mutex has nowhere to hide;
//   - runtime:       ds/util/lockdep.h checks every acquisition against the
//                    held-lock stack and the observed acquired-after graph
//                    (armed in tests, TSan builds, and ds_stress), and can
//                    dump the observed graph as lock_order.json;
//   - static:        tools/ds_analyze.cc parses THIS TABLE (the X-macro
//                    below — keep its layout: one X(...) per line) and
//                    cross-checks it against the harvested Mutex
//                    declarations and MutexLock nesting in the sources.
//
// Adding a lock: pick a rank consistent with every code path that can hold
// it together with an existing lock, add an X(...) row, and construct the
// Mutex with the new LockRank. ds_analyze fails if the declaration and the
// table disagree; lockdep aborts (with both acquisition stacks) if reality
// disagrees with the declared order.

#ifndef DS_UTIL_LOCK_ORDER_H_
#define DS_UTIL_LOCK_ORDER_H_

#include <cstddef>

namespace ds::util {

// X(enum_id, rank, class_name, holder) — ranks strictly increase down the
// table. class_name is the stable identity used in lockdep reports and
// lock_order.json; holder documents the declaring member.
//
// Rationale for the ordering (the edges each rank must sit above/below):
//   net.server.stop      held across loop shutdown -> event_loop.tasks
//   serve.server.stop    held while flipping shard stopping -> server.shard
//   sketch.manager...    held across registry Contains -> registry.shard
//   serve.server.shard   worker queues; dropped before ServeBatch, which
//                        takes registry.shard and the cache leaf locks
//   net.server.tenants   held across instrument creation -> obs.registry
//   obs.drift.set        held across per-monitor Report -> obs.drift.monitor
//   test.outer/inner/leaf  reserved for tests (lockdep_test, examples)
#define DS_LOCK_RANK_TABLE(X)                                                  \
  X(kNetServerStop, 100, "net.server.stop", "net::NetServer::stop_mu_")        \
  X(kServeServerStop, 150, "serve.server.stop",                                \
    "serve::SketchServer::stop_mu_")                                           \
  X(kSketchManagerCreating, 200, "sketch.manager.creating",                    \
    "sketch::SketchManager::creating_mu_")                                     \
  X(kServeServerShard, 250, "serve.server.shard",                              \
    "serve::SketchServer::Shard::mu")                                          \
  X(kServeServerDump, 300, "serve.server.dump",                                \
    "serve::SketchServer::dump_mu_")                                           \
  X(kServeRegistryShard, 350, "serve.registry.shard",                          \
    "serve::SketchRegistry::Shard::mu")                                        \
  X(kServeServerStmtCache, 400, "serve.server.stmt_cache",                     \
    "serve::SketchServer::stmt_mu_")                                           \
  X(kServeServerResultCache, 410, "serve.server.result_cache",                 \
    "serve::SketchServer::result_mu_")                                         \
  X(kNetServerTenants, 450, "net.server.tenants",                              \
    "net::NetServer::tenant_mu_")                                              \
  X(kNetAdmissionBuckets, 500, "net.admission.buckets",                        \
    "net::AdmissionController::mu_")                                           \
  X(kNetEventLoopTasks, 550, "net.event_loop.tasks", "net::EventLoop::mu_")    \
  X(kObsDriftSet, 600, "obs.drift.set", "obs::DriftMonitorSet::mu_")           \
  X(kObsDriftMonitor, 620, "obs.drift.monitor",                                \
    "obs::QErrorDriftMonitor::mu_")                                            \
  X(kObsFlightSlow, 650, "obs.flight.slow", "obs::FlightRecorder::slow_mu_")   \
  X(kObsRegistry, 700, "obs.registry", "obs::Registry::mu_")                   \
  X(kStressOracles, 750, "stress.oracles", "stress::OracleLedger::mu_")        \
  X(kTestOuter, 900, "test.outer", "tests (ad-hoc outer lock)")                \
  X(kTestInner, 930, "test.inner", "tests (ad-hoc inner lock)")                \
  X(kTestLeaf, 960, "test.leaf", "tests (ad-hoc leaf lock)")

/// The rank itself is the enum value, so the enum and the table cannot
/// drift apart.
enum class LockRank : int {
#define DS_LOCK_RANK_ENUM_(id, rank, name, holder) id = rank,
  DS_LOCK_RANK_TABLE(DS_LOCK_RANK_ENUM_)
#undef DS_LOCK_RANK_ENUM_
};

/// One row of the manifest. Also serves as the runtime "lock class"
/// descriptor: every ranked Mutex holds a pointer to its row.
struct LockRankEntry {
  LockRank id;
  int rank;
  const char* name;    // stable identity in reports / lock_order.json
  const char* holder;  // the declaring member, for humans
};

inline constexpr LockRankEntry kLockRankTable[] = {
#define DS_LOCK_RANK_ROW_(id, rank, name, holder) \
  {LockRank::id, rank, name, holder},
    DS_LOCK_RANK_TABLE(DS_LOCK_RANK_ROW_)
#undef DS_LOCK_RANK_ROW_
};

inline constexpr size_t kNumLockRanks =
    sizeof(kLockRankTable) / sizeof(kLockRankTable[0]);

/// The manifest row for `rank`; null only for a LockRank value that is not
/// in the table (impossible for in-range enum constants).
inline constexpr const LockRankEntry* LockRankInfo(LockRank rank) {
  for (size_t i = 0; i < kNumLockRanks; ++i) {
    if (kLockRankTable[i].id == rank) return &kLockRankTable[i];
  }
  return nullptr;
}

/// Dense [0, kNumLockRanks) index of a table row — the node id in lockdep's
/// acquired-after adjacency matrix.
inline constexpr size_t LockRankIndex(const LockRankEntry* entry) {
  return static_cast<size_t>(entry - kLockRankTable);
}

}  // namespace ds::util

#endif  // DS_UTIL_LOCK_ORDER_H_

// Summary statistics used throughout the evaluation harness, in particular
// the q-error aggregates that Table 1 of the paper reports.

#ifndef DS_UTIL_STATS_H_
#define DS_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ds::util {

/// The q-error between a true and an estimated cardinality
/// (Moerkotte et al., PVLDB 2009): max(est/true, true/est), always >= 1.
/// Both sides are clamped to >= 1 tuple first, the convention used by the
/// learnedcardinalities code so that empty results do not divide by zero.
double QError(double true_card, double estimated_card);

/// Percentile by linear interpolation between closest ranks; p in [0, 100].
/// Requires a non-empty input; does not need to be pre-sorted.
double Percentile(std::vector<double> values, double p);

double Mean(const std::vector<double>& values);
double Median(std::vector<double> values);

/// The aggregate row the paper's Table 1 reports for one estimator.
struct QErrorSummary {
  double median = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  double mean = 0;
  size_t count = 0;

  /// Computes all aggregates from raw per-query q-errors (must be non-empty).
  static QErrorSummary FromQErrors(std::vector<double> qerrors);

  /// One formatted table row: "median 90th 95th 99th max mean".
  std::string ToRow() const;
};

/// Prints an aligned text table (used by bench harnesses to mirror the
/// paper's tables). All rows must have `header.size()` cells.
std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

/// Formats a double the way the paper prints q-errors: 3 significant digits
/// ("3.82", "78.4", "1110").
std::string FormatQ(double v);

}  // namespace ds::util

#endif  // DS_UTIL_STATS_H_

#include "ds/util/fd.h"

#include <unistd.h>

namespace ds::util {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0 && fd_ != fd) {
    ::close(fd_);  // the one sanctioned close call (see ds_lint `naked-fd`)
  }
  fd_ = fd;
}

}  // namespace ds::util

// Minimal fork-join parallelism for the data-parallel trainer.
//
// ParallelFor runs fn(0..n-1) across up to `threads` OS threads (the caller
// participates, so `threads == 1` runs inline with no spawns). Indices are
// claimed from a shared atomic, so uneven task costs balance automatically.
// The call returns after every index has finished — a full barrier.
//
// The callback must not throw (the codebase reports errors via Status, and
// DS_CHECK aborts); an exception escaping a worker thread would terminate.

#ifndef DS_UTIL_PARALLEL_H_
#define DS_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace ds::util {

template <typename Fn>
void ParallelFor(size_t n, size_t threads, const Fn& fn) {
  if (n == 0) return;
  if (threads == 0) threads = 1;
  if (threads > n) threads = n;
  if (threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (size_t t = 0; t + 1 < threads; ++t) workers.emplace_back(work);
  work();
  for (std::thread& w : workers) w.join();
}

/// Hardware threads available, at least 1 (hardware_concurrency may be 0).
inline size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace ds::util

#endif  // DS_UTIL_PARALLEL_H_

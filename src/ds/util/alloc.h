// Process-wide heap-allocation counting.
//
// alloc.cc replaces the global operator new/delete with forwarding versions
// that bump relaxed atomic counters. The counters cost one uncontended
// atomic add per allocation — cheap enough to leave on in Release builds —
// and power the "zero allocations per steady-state batch" checks: tests and
// benches read AllocCount() before/after a hot-path call, and the serving
// layer exports the per-batch delta as a gauge.
//
// Under ASan/TSan/MSan the replacement is compiled out (the sanitizer
// runtimes interpose the allocator themselves); AllocCountingAvailable()
// reports whether real counts are being collected so callers can skip
// assertions instead of reading frozen zeros.

#ifndef DS_UTIL_ALLOC_H_
#define DS_UTIL_ALLOC_H_

#include <cstdint>

namespace ds::util {

/// True when operator new/delete are instrumented in this build.
bool AllocCountingAvailable();

/// Heap allocations (operator new calls) so far, process-wide.
uint64_t AllocCount();

/// Bytes requested from operator new so far, process-wide.
uint64_t AllocBytes();

}  // namespace ds::util

#endif  // DS_UTIL_ALLOC_H_

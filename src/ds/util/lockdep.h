// Runtime lockdep: dynamic verification of the lock order declared in
// ds/util/lock_order.h (the Linux-kernel-lockdep / absl-deadlock-detector
// idea, sized for this codebase's fixed, named lock universe).
//
// Every ranked ds::util::Mutex acquisition and release calls the inline
// hooks below. When armed, the checker maintains
//
//   - a per-thread stack of held locks (each with the stack trace captured
//     at its acquisition), and
//   - a global acquired-after graph over lock classes: an edge A -> B means
//     "some thread acquired B while holding A", with the pair of stack
//     traces that first established the edge.
//
// On each acquisition of B while A is held it checks, in order:
//   1. rank discipline: rank(B) must be strictly greater than rank(A) —
//      the manifest's total order (same rank = never held together, which
//      is how "shard locks are never nested" is expressed);
//   2. cycle freedom: adding A -> B must not close a cycle in the
//      acquired-after graph (catches ABBA even between same-rank classes
//      before any thread actually deadlocks — the edge is the evidence,
//      no unlucky interleaving required).
//
// A violation prints both acquisition stacks (the held lock's and the
// current one, plus the first-observation stacks of the conflicting edge)
// and aborts by default; SetAbortOnViolation(false) switches to
// count-and-continue for harnesses that want to keep going.
//
// Arming: default-on in debug (!NDEBUG) and ThreadSanitizer builds;
// overridable either way with DS_LOCKDEP=0|1 in the environment (the test
// suite sets DS_LOCKDEP=1 for every ctest, and ds_stress arms it
// explicitly). Unranked mutexes (default-constructed) and disarmed builds
// cost one relaxed atomic load and a predictable branch per lock
// operation.
//
// The observed graph can be dumped as lock_order.json
// (WriteObservedGraph); tools/ds_analyze.cc diffs that observed order
// against the declared manifest, closing the loop between what the code
// says and what it does.

#ifndef DS_UTIL_LOCKDEP_H_
#define DS_UTIL_LOCKDEP_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "ds/util/lock_order.h"

namespace ds::util::lockdep {

namespace internal {
/// Armed flag. Initialized from the build type and the DS_LOCKDEP
/// environment variable (see lockdep.cc); writable via SetEnabled.
extern std::atomic<bool> g_enabled;

void AcquireSlow(const LockRankEntry* cls, bool try_lock);
void ReleaseSlow(const LockRankEntry* cls);
}  // namespace internal

/// Whether the checker is currently armed.
bool Enabled();

/// Arms / disarms the checker process-wide. Threads already inside a
/// critical section keep their held stacks consistent (release of a lock
/// acquired while disarmed is a no-op).
void SetEnabled(bool enabled);

/// Abort (default) or count-and-continue on violation.
void SetAbortOnViolation(bool abort_on_violation);

/// Violations observed so far (only meaningful in count-and-continue mode;
/// in abort mode the first violation ends the process).
uint64_t ViolationCount();

/// The observed acquired-after graph as lock_order.json text:
/// {"classes":[{"name","rank","holder"}...],
///  "edges":[{"from","to","count"}...], "violations":N}.
std::string ObservedGraphJson();

/// Writes ObservedGraphJson() to `path`. Returns false on I/O failure.
bool WriteObservedGraph(const std::string& path);

/// Test hook: clears the global edge graph and the violation counter (the
/// calling thread must hold no ranked locks).
void ResetForTest();

/// Hot-path hooks, called by Mutex/MutexLock (ds/util/thread_annotations.h).
/// `cls` is null for unranked mutexes. OnAcquire runs BEFORE the underlying
/// lock blocks, so an inversion that would deadlock is reported instead of
/// hanging.
inline void OnAcquire(const LockRankEntry* cls) {
  if (cls == nullptr ||
      !internal::g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  internal::AcquireSlow(cls, /*try_lock=*/false);
}

/// Hook for a SUCCESSFUL TryLock: records the held lock and the graph edge
/// but never aborts — a trylock cannot deadlock, but the edge it proves is
/// still evidence for other threads' blocking acquisitions.
inline void OnTryAcquire(const LockRankEntry* cls) {
  if (cls == nullptr ||
      !internal::g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  internal::AcquireSlow(cls, /*try_lock=*/true);
}

inline void OnRelease(const LockRankEntry* cls) {
  if (cls == nullptr ||
      !internal::g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  internal::ReleaseSlow(cls);
}

}  // namespace ds::util::lockdep

#endif  // DS_UTIL_LOCKDEP_H_

// Binary serialization used for sketch files, trained models, and workloads.
//
// The format is little-endian, unversioned primitives framed by callers
// (each persistent artifact writes its own magic + version header). Readers
// return Status on truncated or malformed input instead of aborting, since
// files come from outside the process.

#ifndef DS_UTIL_SERIALIZE_H_
#define DS_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "ds/util/status.h"

namespace ds::util {

/// Appends primitives to an in-memory byte buffer.
class BinaryWriter {
 public:
  template <typename T>
  void WritePod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &value, sizeof(T));
  }

  void WriteU32(uint32_t v) { WritePod(v); }
  void WriteU64(uint64_t v) { WritePod(v); }
  void WriteI64(int64_t v) { WritePod(v); }
  void WriteF32(float v) { WritePod(v); }
  void WriteF64(double v) { WritePod(v); }
  void WriteU8(uint8_t v) { WritePod(v); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    size_t off = buf_.size();
    buf_.resize(off + v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(buf_.data() + off, v.data(), v.size() * sizeof(T));
    }
  }

  void WriteStringVector(const std::vector<std::string>& v) {
    WriteU64(v.size());
    for (const auto& s : v) WriteString(s);
  }

  /// Count-prefixed raw POD span — wire-identical to WritePodVector, for
  /// sources that are not std::vector (e.g. nn::FloatBuffer).
  template <typename T>
  void WritePodSpan(const T* data, size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(n);
    size_t off = buf_.size();
    buf_.resize(off + n * sizeof(T));
    if (n > 0) std::memcpy(buf_.data() + off, data, n * sizeof(T));
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

  /// Writes the buffer to `path`, replacing any existing file.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<uint8_t> buf_;
};

/// Reads primitives from a byte buffer; all reads are bounds-checked.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> buf) : buf_(std::move(buf)) {}

  static Result<BinaryReader> FromFile(const std::string& path);

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > buf_.size()) {
      return Status::OutOfRange("truncated input: need " +
                                std::to_string(sizeof(T)) + " bytes at " +
                                std::to_string(pos_));
    }
    std::memcpy(out, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) { return ReadPod(v); }
  Status ReadU64(uint64_t* v) { return ReadPod(v); }
  Status ReadI64(int64_t* v) { return ReadPod(v); }
  Status ReadF32(float* v) { return ReadPod(v); }
  Status ReadF64(double* v) { return ReadPod(v); }
  Status ReadU8(uint8_t* v) { return ReadPod(v); }
  Status ReadBool(bool* v) {
    uint8_t b = 0;
    DS_RETURN_NOT_OK(ReadU8(&b));
    *v = b != 0;
    return Status::OK();
  }

  Status ReadString(std::string* out);

  template <typename T>
  Status ReadPodVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    DS_RETURN_NOT_OK(ReadU64(&n));
    // Divide instead of multiplying: `n` comes from the file, and a corrupt
    // count must not wrap `n * sizeof(T)` past the bounds check (or reach
    // resize() and take the process down with bad_alloc).
    if (n > remaining() / sizeof(T)) {
      return Status::OutOfRange("truncated vector of " + std::to_string(n) +
                                " elements");
    }
    out->resize(n);
    if (n > 0) std::memcpy(out->data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::OK();
  }

  Status ReadStringVector(std::vector<std::string>* out);

  /// Reads a count-prefixed POD span written by WritePodSpan/WritePodVector
  /// into a caller-owned buffer of exactly `expect` elements.
  template <typename T>
  Status ReadPodSpan(T* out, uint64_t expect) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    DS_RETURN_NOT_OK(ReadU64(&n));
    if (n != expect) {
      return Status::OutOfRange("pod span has " + std::to_string(n) +
                                " elements, expected " +
                                std::to_string(expect));
    }
    if (n > remaining() / sizeof(T)) {
      return Status::OutOfRange("truncated span of " + std::to_string(n) +
                                " elements");
    }
    if (n > 0) std::memcpy(out, buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::OK();
  }

  /// Validates an element count read from the input before the caller sizes
  /// a container with it: each counted element needs at least
  /// `min_bytes_each` further input bytes, so any larger count proves the
  /// file truncated or corrupt *before* a resize/reserve turns it into a
  /// multi-GiB allocation (or bad_alloc abort).
  Status CheckCount(uint64_t n, size_t min_bytes_each) const {
    const size_t unit = min_bytes_each == 0 ? 1 : min_bytes_each;
    if (n > remaining() / unit) {
      return Status::OutOfRange(
          "implausible element count " + std::to_string(n) + " with " +
          std::to_string(remaining()) + " bytes of input left");
    }
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
};

}  // namespace ds::util

#endif  // DS_UTIL_SERIALIZE_H_

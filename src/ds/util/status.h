// Status / Result error handling for the deepsketch library.
//
// Library code does not throw exceptions (see DESIGN.md). Fallible functions
// return ds::Status, or ds::Result<T> when they produce a value. The
// DS_RETURN_NOT_OK and DS_ASSIGN_OR_RETURN macros propagate errors; DS_CHECK
// (logging.h) aborts on programmer errors that are not recoverable.

#ifndef DS_UTIL_STATUS_H_
#define DS_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace ds {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
};

/// Returns a human-readable name for `code` ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. OK status carries no allocation.
/// [[nodiscard]]: a dropped Status is a swallowed error — every caller must
/// check, propagate (DS_RETURN_NOT_OK), or explicitly (void)-cast. ds_lint's
/// discarded-status rule backs this up for gcc call sites the attribute
/// alone would miss.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programmer error and aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      var_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(var_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(var_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

 private:
  void AbortIfError() const;
  std::variant<T, Status> var_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(var_));
}

}  // namespace ds

#define DS_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::ds::Status ds_status_ = (expr);           \
    if (!ds_status_.ok()) return ds_status_;    \
  } while (false)

#define DS_CONCAT_IMPL(x, y) x##y
#define DS_CONCAT(x, y) DS_CONCAT_IMPL(x, y)

// DS_ASSIGN_OR_RETURN(lhs, rexpr): evaluates rexpr (a Result<T>), returns its
// status on error, otherwise assigns the value to lhs. lhs may include a
// declaration, e.g. DS_ASSIGN_OR_RETURN(auto table, catalog.Find("t")).
#define DS_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  DS_ASSIGN_OR_RETURN_IMPL(DS_CONCAT(ds_result_, __LINE__), lhs, rexpr)

#define DS_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                             \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value();

#endif  // DS_UTIL_STATUS_H_

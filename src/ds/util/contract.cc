#include "ds/util/contract.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ds/util/alloc.h"

namespace ds::util {
namespace {

std::atomic<uint64_t> g_violations{0};
std::atomic<ContractPolicy> g_policy{ContractPolicy::kAbort};
std::atomic<ContractObserver> g_observer{nullptr};
std::atomic<bool> g_no_alloc_enforced{false};

const char* KindName(ContractKind kind) {
  switch (kind) {
    case ContractKind::kRequire:
      return "REQUIRE";
    case ContractKind::kEnsure:
      return "ENSURE";
    case ContractKind::kInvariant:
      return "INVARIANT";
    case ContractKind::kDcheck:
      return "DCHECK";
    case ContractKind::kNoAlloc:
      return "NO_ALLOC";
  }
  return "CONTRACT";
}

void FormatViolation(char* out, size_t cap, const ContractViolation& v) {
  if (v.message[0] != '\0') {
    std::snprintf(out, cap, "%s:%d: DS_%s failed: %s — %s", v.file, v.line,
                  KindName(v.kind), v.expression, v.message);
  } else {
    std::snprintf(out, cap, "%s:%d: DS_%s failed: %s", v.file, v.line,
                  KindName(v.kind), v.expression);
  }
}

void Dispatch(const ContractViolation& v) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (ContractObserver observer = g_observer.load(std::memory_order_acquire)) {
    observer(v);
  }
  switch (g_policy.load(std::memory_order_acquire)) {
    case ContractPolicy::kAbort: {
      char buf[512];
      FormatViolation(buf, sizeof(buf), v);
      std::fprintf(stderr, "%s\n", buf);
      std::fflush(stderr);
      std::abort();
    }
    case ContractPolicy::kThrow:
      throw ContractViolationError(v);
    case ContractPolicy::kCount: {
      char buf[512];
      FormatViolation(buf, sizeof(buf), v);
      std::fprintf(stderr, "%s (continuing: policy=count)\n", buf);
      return;
    }
  }
}

}  // namespace

ContractViolationError::ContractViolationError(const ContractViolation& v)
    : kind_(v.kind) {
  FormatViolation(what_, sizeof(what_), v);
}

uint64_t ContractViolationCount() {
  return g_violations.load(std::memory_order_relaxed);
}

ContractPolicy GetContractPolicy() {
  return g_policy.load(std::memory_order_acquire);
}

ContractPolicy SetContractPolicy(ContractPolicy policy) {
  return g_policy.exchange(policy, std::memory_order_acq_rel);
}

ContractObserver SetContractObserver(ContractObserver observer) {
  return g_observer.exchange(observer, std::memory_order_acq_rel);
}

namespace internal {

void ContractFailed(ContractKind kind, const char* file, int line,
                    const char* expression, const char* fmt, ...) {
  char message[384];
  message[0] = '\0';
  if (fmt != nullptr) {
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof(message), fmt, args);
    va_end(args);
  }
  ContractViolation v;
  v.kind = kind;
  v.file = file;
  v.line = line;
  v.expression = expression;
  v.message = message;
  Dispatch(v);
}

}  // namespace internal

bool NoAllocEnforcementEnabled() {
  return g_no_alloc_enforced.load(std::memory_order_acquire);
}

bool SetNoAllocEnforcement(bool enabled) {
  return g_no_alloc_enforced.exchange(enabled, std::memory_order_acq_rel);
}

NoAllocRegion::NoAllocRegion(const char* file, int line)
    : file_(file), line_(line) {
  armed_ = NoAllocEnforcementEnabled() && AllocCountingAvailable();
  if (armed_) start_count_ = AllocCount();
}

void NoAllocRegion::End() {
  if (ended_) return;
  ended_ = true;
  if (!armed_) return;
  const uint64_t delta = AllocCount() - start_count_;
  if (delta != 0) {
    internal::ContractFailed(ContractKind::kNoAlloc, file_, line_,
                             "AllocCount() delta == 0",
                             "%llu allocation(s) inside DS_NO_ALLOC region",
                             static_cast<unsigned long long>(delta));
  }
}

}  // namespace ds::util

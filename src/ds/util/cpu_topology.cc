#include "ds/util/cpu_topology.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ds::util {

namespace {

#if defined(__linux__)

/// Reads a small integer from a /sys topology file; `fallback` when the
/// file is missing or unparsable (e.g. inside minimal containers).
int ReadSysInt(const std::string& path, int fallback) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return fallback;
  int value = fallback;
  if (std::fscanf(f, "%d", &value) != 1) value = fallback;
  std::fclose(f);
  return value;
}

#endif  // __linux__

}  // namespace

size_t CpuTopology::num_cores() const {
  std::set<std::pair<int, int>> cores;  // (package, core)
  for (const CpuInfo& c : cpus) cores.insert({c.package_id, c.core_id});
  return cores.size();
}

CpuTopology DetectCpuTopology() {
  CpuTopology topo;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (!CPU_ISSET(cpu, &mask)) continue;
      const std::string base =
          "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
      CpuInfo info;
      info.cpu = cpu;
      info.core_id = ReadSysInt(base + "core_id", cpu);
      info.package_id = ReadSysInt(base + "physical_package_id", 0);
      topo.cpus.push_back(info);
    }
  }
#endif
  if (topo.cpus.empty()) topo.cpus.push_back(CpuInfo{});
  return topo;
}

std::vector<int> PlanWorkerCpus(const CpuTopology& topology,
                                size_t num_workers) {
  std::vector<int> plan;
  plan.reserve(num_workers);
  if (topology.cpus.empty() || num_workers == 0) return plan;

  // Order CPUs so that walking the list front-to-back visits every physical
  // core once before revisiting any core's hyperthread sibling: sort by
  // (occurrence index within the core, package, core). Occurrence 0 of each
  // core sorts before every occurrence 1.
  struct Slot {
    int occurrence;
    int package;
    int core;
    int cpu;
  };
  std::vector<Slot> slots;
  slots.reserve(topology.cpus.size());
  std::vector<std::pair<std::pair<int, int>, int>> counts;
  auto occurrence_of = [&counts](int package, int core) {
    for (auto& [key, n] : counts) {
      if (key.first == package && key.second == core) return n++;
    }
    counts.push_back({{package, core}, 1});
    return 0;
  };
  for (const CpuInfo& c : topology.cpus) {
    slots.push_back(Slot{occurrence_of(c.package_id, c.core_id), c.package_id,
                         c.core_id, c.cpu});
  }
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) {
                     if (a.occurrence != b.occurrence) {
                       return a.occurrence < b.occurrence;
                     }
                     if (a.package != b.package) return a.package < b.package;
                     if (a.core != b.core) return a.core < b.core;
                     return a.cpu < b.cpu;
                   });
  for (size_t w = 0; w < num_workers; ++w) {
    plan.push_back(slots[w % slots.size()].cpu);
  }
  return plan;
}

Status PinCurrentThreadToCpu(int cpu) {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  const int rc = pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask);
  if (rc != 0) {
    return Status::Internal("pthread_setaffinity_np(cpu=" +
                            std::to_string(cpu) + ") failed with errno " +
                            std::to_string(rc));
  }
  return Status::OK();
#else
  (void)cpu;
  return Status::OK();  // pinning is an optimization; see header
#endif
}

int CurrentCpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

}  // namespace ds::util

// Huge-page, NUMA-aware bump arena backing the inference workspaces.
//
// nn::Workspace tensors grow once (warm-up to the largest batch seen) and
// are then reused forever, which is exactly the profile a bump arena wants:
// allocation is a pointer increment, nothing is ever freed individually,
// and the whole arena dies with its owner. Backing the arena with
// mmap + MADV_HUGEPAGE puts the hot activation buffers on 2 MiB pages
// (fewer TLB misses on the batched matmul sweeps); faulting the pages in on
// the owning thread right after it has been pinned (see
// util/cpu_topology.h) places them on that worker's NUMA node via the
// kernel's first-touch policy.
//
// Everything degrades gracefully, in line with cpu_topology.h: when mmap is
// unavailable (or deliberately disabled for tests) chunks come from
// operator new; when the kernel lacks transparent huge pages the madvise
// is simply ignored. Callers treat the arena as an optimization, never a
// correctness requirement — Stats says what actually happened.
//
// Thread-safety: an Arena is NOT thread-safe; use one per worker thread
// (the same ownership rule as the Workspace it backs).

#ifndef DS_UTIL_ARENA_H_
#define DS_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ds::util {

struct ArenaOptions {
  /// Granularity of the mmap reservations. Allocations larger than this get
  /// their own dedicated chunk.
  size_t chunk_bytes = 8u << 20;  // 8 MiB

  /// Ask for transparent huge pages (MADV_HUGEPAGE). Best-effort: kernels
  /// without THP ignore it and Stats records the miss.
  bool huge_pages = true;

  /// Touch every page of a new chunk on the allocating thread so the
  /// first-touch policy binds it to that thread's NUMA node. Costs one
  /// memset per chunk at warm-up, nothing at steady state.
  bool prefault = true;

  /// Test hook: skip mmap entirely and take the heap fallback path.
  bool force_heap = false;
};

class Arena {
 public:
  explicit Arena(const ArenaOptions& options = {});
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bytes from the arena, aligned to `align` (a power of two ≤ 4096).
  /// Never returns nullptr (falls back to the heap, then aborts only if
  /// the heap itself is exhausted, like operator new).
  void* Allocate(size_t bytes, size_t align = 64);

  /// True when `p` points into arena-owned memory (tests and the buffer
  /// ownership checks use this).
  bool Contains(const void* p) const;

  struct Stats {
    size_t chunks = 0;
    size_t reserved_bytes = 0;    // sum of chunk sizes
    size_t allocated_bytes = 0;   // bytes handed out (incl. alignment pad)
    size_t mmap_chunks = 0;       // chunks that came from mmap
    size_t huge_page_chunks = 0;  // chunks where MADV_HUGEPAGE stuck
  };
  Stats stats() const { return stats_; }

  const ArenaOptions& options() const { return options_; }

 private:
  struct Chunk {
    uint8_t* base = nullptr;
    size_t size = 0;
    bool mmapped = false;
  };

  /// Reserves a chunk of at least `min_bytes`; updates cur_/end_.
  void AddChunk(size_t min_bytes);

  ArenaOptions options_;
  std::vector<Chunk> chunks_;
  uint8_t* cur_ = nullptr;  // bump pointer within the newest chunk
  uint8_t* end_ = nullptr;
  Stats stats_;
};

/// Whether workspaces should bind arenas by default in this process:
/// true unless DS_ARENA=0 (checked once). The serving scratch consults
/// this so deployments can fall back to plain heap tensors without a
/// rebuild.
bool ArenaEnabledByEnv();

}  // namespace ds::util

#endif  // DS_UTIL_ARENA_H_

// Clang thread-safety annotations and the annotated mutex wrapper.
//
// The serving/observability layers are heavily concurrent; every invariant
// of the form "member X is protected by mutex M" is declared with these
// macros so clang's -Wthread-safety analysis (wired into CMake for clang
// builds and enforced as an error in CI's lint job) proves lock discipline
// at compile time. Under GCC the annotations expand to nothing and the
// wrappers cost exactly what std::mutex/std::unique_lock cost.
//
// Project rule (enforced by tools/ds_lint.cc): library code under src/ never
// uses std::mutex / std::condition_variable / std::lock_guard directly —
// always ds::util::Mutex, MutexLock, and CondVar, so every lock site is
// visible to the analysis.
//
//   class Cache {
//     mutable ds::util::Mutex mu_;
//     std::map<...> entries_ DS_GUARDED_BY(mu_);
//     void EvictLocked() DS_REQUIRES(mu_);
//   };
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef DS_UTIL_THREAD_ANNOTATIONS_H_
#define DS_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "ds/util/lockdep.h"

#if defined(__clang__)
#define DS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DS_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define DS_CAPABILITY(x) DS_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction.
#define DS_SCOPED_CAPABILITY DS_THREAD_ANNOTATION__(scoped_lockable)

/// Member is protected by the given capability.
#define DS_GUARDED_BY(x) DS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointed-to data (not the pointer itself) is protected by the capability.
#define DS_PT_GUARDED_BY(x) DS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define DS_REQUIRES(...) \
  DS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define DS_ACQUIRE(...) \
  DS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define DS_RELEASE(...) \
  DS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function may acquire the capability; the bool result says whether it did.
#define DS_TRY_ACQUIRE(...) \
  DS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock / lock-order
/// documentation: e.g. the server's cache helpers exclude the queue mutex).
#define DS_EXCLUDES(...) DS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis time) that the capability is held.
#define DS_ASSERT_CAPABILITY(x) \
  DS_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define DS_RETURN_CAPABILITY(x) DS_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: function body is not analyzed. Use sparingly, with a
/// comment explaining why the analysis cannot see the invariant.
#define DS_NO_THREAD_SAFETY_ANALYSIS \
  DS_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace ds::util {

class CondVar;
class MutexLock;

/// std::mutex annotated as a clang capability. Prefer MutexLock over calling
/// Lock/Unlock manually.
///
/// A mutex that can ever be held together with another one must be ranked:
/// construct it with its LockRank from the manifest in
/// ds/util/lock_order.h. Ranked mutexes are checked by the runtime lockdep
/// (ds/util/lockdep.h) against the declared global acquisition order and by
/// the ds_analyze static pass; default-constructed (unranked) mutexes are
/// invisible to both — reserve them for throwaway locals in tests.
class DS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : class_(LockRankInfo(rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DS_ACQUIRE() {
    lockdep::OnAcquire(class_);
    mu_.lock();
  }
  void Unlock() DS_RELEASE() {
    lockdep::OnRelease(class_);
    mu_.unlock();
  }
  bool TryLock() DS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockdep::OnTryAcquire(class_);
    return true;
  }

  /// The manifest row this mutex was ranked with; null when unranked.
  const LockRankEntry* lock_class() const { return class_; }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
  const LockRankEntry* class_ = nullptr;
};

/// RAII lock on a ds::util::Mutex (the std::unique_lock analogue, visible to
/// the analysis). Supports the worker-loop pattern of temporarily dropping
/// the lock around a long operation via Unlock()/Lock().
class DS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DS_ACQUIRE(mu)
      : mu_(&mu), lock_(LockdepAcquire(mu)) {}
  ~MutexLock() DS_RELEASE() {
    if (lock_.owns_lock()) lockdep::OnRelease(mu_->class_);
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drops the lock mid-scope (e.g. to run a batch outside the queue lock).
  void Unlock() DS_RELEASE() {
    lockdep::OnRelease(mu_->class_);
    lock_.unlock();
  }

  /// Reacquires after Unlock().
  void Lock() DS_ACQUIRE() {
    lockdep::OnAcquire(mu_->class_);
    lock_.lock();
  }

 private:
  friend class CondVar;

  /// Runs the lockdep order check BEFORE blocking on the mutex, so an
  /// inversion that would deadlock reports instead of hanging.
  static std::mutex& LockdepAcquire(Mutex& mu) {
    lockdep::OnAcquire(mu.class_);
    return mu.mu_;
  }

  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with ds::util::Mutex via MutexLock. Wait*
/// atomically release and reacquire the lock; the thread-safety analysis
/// models the lock as continuously held across the wait, which matches the
/// caller-visible contract (guarded members may be touched before and
/// after).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace ds::util

#endif  // DS_UTIL_THREAD_ANNOTATIONS_H_

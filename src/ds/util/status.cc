#include "ds/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ds {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Fatal: value() called on errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ds

#include "ds/util/json_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ds::util {

namespace {

/// Recursive-descent JSON validity checker (structure only). Promoted from
/// the obs test suite so production tools can reuse it.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage");
    return true;
  }

  const std::string& error() const { return error_; }
  size_t pos() const { return pos_; }

 private:
  bool Value() {
    if (depth_ > 256) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    ++depth_;
    SkipWs();
    if (Peek('}')) return Leave();
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return Leave();
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    ++depth_;
    SkipWs();
    if (Peek(']')) return Leave();
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return Leave();
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    // strtod needs a NUL-terminated buffer; copy the (short) number prefix.
    char buf[64];
    size_t n = 0;
    while (pos_ + n < text_.size() && n < sizeof(buf) - 1 &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_ + n])) ||
            std::strchr("+-.eE", text_[pos_ + n]) != nullptr)) {
      buf[n] = text_[pos_ + n];
      ++n;
    }
    buf[n] = '\0';
    char* end = nullptr;
    std::strtod(buf, &end);
    if (end == buf) return Fail("expected value");
    pos_ += static_cast<size_t>(end - buf);
    return true;
  }
  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }
  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) {
    if (Peek(c)) return true;
    char msg[32];
    std::snprintf(msg, sizeof(msg), "expected '%c'", c);
    return Fail(msg);
  }
  bool Leave() {
    --depth_;
    return true;
  }
  bool Fail(const char* why) {
    if (error_.empty()) error_ = why;
    return false;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool JsonWellFormed(std::string_view text, std::string* error) {
  JsonChecker checker(text);
  if (checker.Valid()) return true;
  if (error != nullptr) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s at byte %zu",
                  checker.error().empty() ? "invalid JSON"
                                          : checker.error().c_str(),
                  checker.pos());
    *error = buf;
  }
  return false;
}

}  // namespace ds::util

#include "ds/util/build_info.h"

#ifndef DS_BUILD_GIT_SHA
#define DS_BUILD_GIT_SHA "unknown"
#endif
#ifndef DS_BUILD_TYPE
#define DS_BUILD_TYPE "unspecified"
#endif

namespace ds::util {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{
      DS_BUILD_GIT_SHA,
      DS_BUILD_TYPE,
#if defined(__VERSION__)
#if defined(__clang__)
      "clang " __VERSION__,
#else
      "gcc " __VERSION__,
#endif
#else
      "unknown",
#endif
  };
  return info;
}

}  // namespace ds::util

// Small string helpers shared by the SQL front-end and CSV I/O.

#ifndef DS_UTIL_STRING_UTIL_H_
#define DS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ds::util {

/// Splits on every occurrence of `sep`; "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats a byte count as "512 B" / "3.2 KiB" / "4.7 MiB".
std::string HumanBytes(size_t bytes);

}  // namespace ds::util

#endif  // DS_UTIL_STRING_UTIL_H_

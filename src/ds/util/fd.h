// UniqueFd: sole ownership of a POSIX file descriptor.
//
// The networking layer (ds/net) juggles listen sockets, per-connection
// sockets, epoll instances, and eventfds; a leaked descriptor under load is
// an outage (accept() starts failing with EMFILE long before memory runs
// out). Every descriptor therefore lives in a UniqueFd from the moment the
// creating syscall returns, and tools/ds_lint.cc bans naked close() calls
// outside this wrapper (rule `naked-fd`, NOLINT(ds-lint) to escape) so a
// descriptor cannot be double-closed or orphaned on an early return.
//
// Semantics mirror std::unique_ptr: move-only, close-on-destroy, release()
// to hand ownership to an API that takes it, reset() to replace.

#ifndef DS_UTIL_FD_H_
#define DS_UTIL_FD_H_

#include <utility>

namespace ds::util {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  ~UniqueFd() { reset(); }

  /// The owned descriptor, or -1.
  int get() const { return fd_; }

  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Relinquishes ownership without closing; returns the descriptor.
  int release() { return std::exchange(fd_, -1); }

  /// Closes the current descriptor (if any) and takes ownership of `fd`.
  /// EINTR on close is ignored: Linux guarantees the descriptor is gone
  /// either way, and retrying risks closing a recycled fd.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

}  // namespace ds::util

#endif  // DS_UTIL_FD_H_

#include "ds/util/alloc.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Sanitizer runtimes interpose malloc/operator new; replacing the global
// operators underneath them breaks their bookkeeping, so counting is
// compiled out under ASan/TSan/MSan.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DS_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DS_ALLOC_COUNTING 0
#endif
#endif
#ifndef DS_ALLOC_COUNTING
#define DS_ALLOC_COUNTING 1
#endif

namespace {

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};

#if DS_ALLOC_COUNTING
void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return nullptr legitimately; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
#endif

}  // namespace

namespace ds::util {

bool AllocCountingAvailable() { return DS_ALLOC_COUNTING != 0; }

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

uint64_t AllocBytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

}  // namespace ds::util

#if DS_ALLOC_COUNTING

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // DS_ALLOC_COUNTING

#include "ds/util/random.h"

#include <cmath>
#include <numbers>

namespace ds::util {

double Pcg32::Normal() {
  // Box-Muller; draw u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<size_t> Pcg32::SampleWithoutReplacement(size_t n, size_t k) {
  DS_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector. O(n) memory, O(n + k) time,
  // fine for the table sizes used in this project.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Bounded(static_cast<uint32_t>(n - i));
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) : skew_(s) {
  DS_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (size_t k = 0; k < n; ++k) cdf_[k] /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Pcg32* rng) const {
  double u = rng->UniformDouble();
  // First k with cdf_[k] >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(size_t k) const {
  DS_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ds::util

// Minimal JSON well-formedness checker (structure only, no DOM).
//
// Used to validate the JSON we *produce* — /statusz, /tracez, Chrome trace
// exports, bench_results files — in tests, CI smoke scripts (via `dsctl
// jsoncheck`), and anywhere else a malformed document should fail fast.
// It deliberately checks structure, not semantics: numbers are anything
// strtod accepts, strings are not validated as UTF-8.

#ifndef DS_UTIL_JSON_CHECK_H_
#define DS_UTIL_JSON_CHECK_H_

#include <string>
#include <string_view>

namespace ds::util {

/// True when `text` is one complete, well-formed JSON value (object, array,
/// string, number, or literal) with nothing but whitespace around it. On
/// failure, when `error` is non-null, stores a short description including
/// the byte offset of the first problem.
bool JsonWellFormed(std::string_view text, std::string* error = nullptr);

}  // namespace ds::util

#endif  // DS_UTIL_JSON_CHECK_H_

// Assertion and logging macros.
//
// DS_CHECK* abort on failure and are enabled in all build types: they guard
// invariants whose violation means the program state is corrupt (Google style
// CHECK). Use Status for recoverable errors.

#ifndef DS_UTIL_LOGGING_H_
#define DS_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ds::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "%s:%d: DS_CHECK failed: %s %s\n", file, line, expr,
               extra.c_str());
  std::abort();
}

template <typename A, typename B>
std::string FormatBinaryCheck(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs " << b << ")";
  return os.str();
}

}  // namespace ds::internal

#define DS_CHECK(cond)                                               \
  do {                                                               \
    if (!(cond))                                                     \
      ::ds::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
  } while (false)

#define DS_CHECK_OP(op, a, b)                                        \
  do {                                                               \
    auto&& ds_a_ = (a);                                              \
    auto&& ds_b_ = (b);                                              \
    if (!(ds_a_ op ds_b_))                                           \
      ::ds::internal::CheckFailed(                                   \
          __FILE__, __LINE__, #a " " #op " " #b,                     \
          ::ds::internal::FormatBinaryCheck(ds_a_, ds_b_));          \
  } while (false)

#define DS_CHECK_EQ(a, b) DS_CHECK_OP(==, a, b)
#define DS_CHECK_NE(a, b) DS_CHECK_OP(!=, a, b)
#define DS_CHECK_LT(a, b) DS_CHECK_OP(<, a, b)
#define DS_CHECK_LE(a, b) DS_CHECK_OP(<=, a, b)
#define DS_CHECK_GT(a, b) DS_CHECK_OP(>, a, b)
#define DS_CHECK_GE(a, b) DS_CHECK_OP(>=, a, b)

#define DS_CHECK_OK(expr)                                            \
  do {                                                               \
    ::ds::Status ds_st_ = (expr);                                    \
    if (!ds_st_.ok())                                                \
      ::ds::internal::CheckFailed(__FILE__, __LINE__, #expr,         \
                                  ds_st_.ToString());                \
  } while (false)

#endif  // DS_UTIL_LOGGING_H_

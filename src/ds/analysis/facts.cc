#include "ds/analysis/facts.h"

#include <algorithm>
#include <regex>

#include "ds/analysis/tokenizer.h"

namespace ds::analysis {

const ManifestEntry* Manifest::FindSymbol(const std::string& symbol) const {
  for (const ManifestEntry& e : entries) {
    if (e.symbol == symbol) return &e;
  }
  return nullptr;
}

const ManifestEntry* Manifest::FindName(const std::string& name) const {
  for (const ManifestEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool ParseManifest(const SourceFile& f, Manifest* out) {
  if (f.content.find("DS_LOCK_RANK_TABLE") == std::string::npos) return false;
  // Rows are X(...) invocations inside the table macro; they survive
  // comment-stripping with string literals intact. A row may wrap across
  // macro continuation lines (clang-format does this), so blank the
  // backslash-newline continuations — keeping the newlines for line
  // accounting — and match the whole text, recovering each row's line
  // from its match offset.
  static const std::regex kRow(
      R"rx(\bX\(\s*(k\w+)\s*,\s*(\d+)\s*,\s*"([^"]*)"\s*,\s*"([^"]*)"\s*\))rx");
  std::string text = StripCode(f.content, StripMode::kComments);
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '\\' && text[i + 1] == '\n') text[i] = ' ';
  }
  out->file = f.path;
  out->entries.clear();
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kRow);
       it != std::sregex_iterator(); ++it) {
    ManifestEntry e;
    e.symbol = (*it)[1].str();
    e.rank = std::stoi((*it)[2].str());
    e.name = (*it)[3].str();
    e.holder = (*it)[4].str();
    e.line = LineOfOffset(text, static_cast<size_t>(it->position()));
    out->entries.push_back(std::move(e));
  }
  return !out->entries.empty();
}

bool LineIsExempt(const FileFacts& facts, size_t line) {
  return std::binary_search(facts.exempt_lines.begin(),
                            facts.exempt_lines.end(), line);
}

namespace {

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "new" || s == "delete" ||
         s == "static_assert" || s == "assert";
}

bool IsAnnotationMacro(const std::string& s) {
  return s == "DS_GUARDED_BY" || s == "DS_PT_GUARDED_BY" ||
         s == "DS_REQUIRES" || s == "DS_ACQUIRE" || s == "DS_RELEASE" ||
         s == "DS_TRY_ACQUIRE" || s == "DS_EXCLUDES" ||
         s == "DS_ASSERT_CAPABILITY" || s == "DS_RETURN_CAPABILITY";
}

struct ScopeFrame {
  enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
  std::string name;
};

std::string ScopePath(const std::vector<ScopeFrame>& scopes) {
  std::string path;
  for (const ScopeFrame& s : scopes) {
    if (s.kind == ScopeFrame::kBlock || s.name.empty()) continue;
    if (!path.empty()) path += "::";
    path += s.name;
  }
  return path;
}

struct ActiveLock {
  std::string var;   // the MutexLock variable ("lock")
  std::string expr;  // the mutex expression ("&shard.mu")
  std::string mutex_var;
  size_t line = 0;
  size_t depth = 0;  // scopes.size() when declared; popped when scope closes
  bool held = true;  // toggled by lock.Unlock()/lock.Lock()
};

/// Joins the argument tokens back into compact source text ("&shard->mu").
std::string JoinTokens(const std::vector<Token>& toks, size_t begin,
                       size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) out += toks[i].text;
  return out;
}

/// Last identifier in [begin, end), or "".
std::string TrailingIdentifier(const std::vector<Token>& toks, size_t begin,
                               size_t end) {
  for (size_t i = end; i > begin; --i) {
    if (toks[i - 1].kind == TokenKind::kIdentifier) return toks[i - 1].text;
  }
  return "";
}

/// Index one past the `)` matching the `(` at `open`, or toks.size().
size_t MatchParen(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (PunctIs(toks, i, "(")) ++depth;
    if (PunctIs(toks, i, ")")) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

}  // namespace

FileFacts HarvestFacts(const SourceFile& f) {
  FileFacts facts;
  facts.path = f.path;

  // Suppressions live in comments; blank the strings first so a "NOLINT"
  // *inside a string literal* (analyzer self-tests, doc text) is not a
  // suppression.
  {
    const std::string with_comments = StripCode(f.content, StripMode::kStrings);
    const std::vector<std::string> lines = SplitLines(with_comments);
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find("NOLINT(ds-analyze)") != std::string::npos) {
        facts.exempt_lines.push_back(i + 1);
      }
    }
  }

  const std::string code = StripCode(f.content, StripMode::kCommentsAndStrings);
  const std::vector<Token> toks = Tokenize(code);

  // Token offset -> line, in one pass.
  std::vector<size_t> tok_line(toks.size());
  {
    size_t line = 1, pos = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      while (pos < toks[i].offset) {
        if (code[pos] == '\n') ++line;
        ++pos;
      }
      tok_line[i] = line;
    }
  }

  // The annotation macros are *defined* in thread_annotations.h; harvesting
  // their `(x)` parameters there would be self-referential noise.
  const bool is_annotation_header =
      EndsWith(f.path, "util/thread_annotations.h");
  // Likewise the manifest header: its X-macro expanders spell
  // `LockRank::id` with macro parameters, not real rank symbols.
  const bool is_manifest_header = EndsWith(f.path, "util/lock_order.h");

  std::vector<ScopeFrame> scopes;
  std::vector<ActiveLock> locks;

  // Pending declaration state for classifying the next `{` at paren depth 0.
  std::string pending_tag;   // "class" | "namespace" | ""
  std::string pending_name;  // candidate scope name
  bool pending_colon_seen = false;
  std::string fn_candidate;  // identifier before the last top-level (...)
  bool have_sig = false;     // that (...) has closed since the last ; { }
  int paren_depth = 0;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    const size_t line = tok_line[i];

    if (t.kind == TokenKind::kIdentifier) {
      // ---- scope bookkeeping -------------------------------------------
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum") {
        pending_tag = "class";
        pending_name.clear();
        pending_colon_seen = false;
      } else if (t.text == "namespace") {
        pending_tag = "namespace";
        pending_name.clear();
        pending_colon_seen = false;
      } else if (!pending_tag.empty() && paren_depth == 0 &&
                 !pending_colon_seen && t.text != "final" &&
                 !PunctIs(toks, i + 1, "(")) {
        pending_name = t.text;
      }

      // ---- LockRank::kFoo references -----------------------------------
      if (!is_manifest_header && t.text == "LockRank" &&
          PunctIs(toks, i + 1, "::") && i + 2 < toks.size() &&
          toks[i + 2].kind == TokenKind::kIdentifier) {
        facts.rank_refs.push_back({line, toks[i + 2].text});
      }

      // ---- Mutex declarations ------------------------------------------
      if (t.text == "Mutex" && i + 2 < toks.size() &&
          toks[i + 1].kind == TokenKind::kIdentifier &&
          (PunctIs(toks, i + 2, ";") || PunctIs(toks, i + 2, "{")) &&
          !(i > 0 && (TokenIs(toks, i - 1, "class") ||
                      TokenIs(toks, i - 1, "struct") ||
                      TokenIs(toks, i - 1, "friend")))) {
        MutexDecl d;
        d.line = line;
        d.var = toks[i + 1].text;
        d.scope = ScopePath(scopes);
        if (PunctIs(toks, i + 2, "{")) {
          // Brace initializer: look for LockRank::kFoo before the `}`.
          int depth = 0;
          for (size_t j = i + 2; j < toks.size(); ++j) {
            if (PunctIs(toks, j, "{")) ++depth;
            if (PunctIs(toks, j, "}") && --depth == 0) break;
            if (TokenIs(toks, j, "LockRank") && PunctIs(toks, j + 1, "::") &&
                j + 2 < toks.size() &&
                toks[j + 2].kind == TokenKind::kIdentifier) {
              d.rank_symbol = toks[j + 2].text;
            }
          }
        }
        facts.mutexes.push_back(std::move(d));
      }

      // ---- annotation bindings -----------------------------------------
      if (!is_annotation_header && IsAnnotationMacro(t.text) &&
          PunctIs(toks, i + 1, "(")) {
        const size_t close = MatchParen(toks, i + 1);
        size_t arg_begin = i + 2;
        int depth = 0;
        for (size_t j = i + 2; j < close; ++j) {
          const bool top_comma = PunctIs(toks, j, ",") && depth == 0;
          if (PunctIs(toks, j, "(")) ++depth;
          if (PunctIs(toks, j, ")")) --depth;
          if (top_comma || j + 1 == close) {
            const size_t arg_end = top_comma ? j : j;
            const std::string name =
                TrailingIdentifier(toks, arg_begin, arg_end);
            // DS_TRY_ACQUIRE's leading bool and empty DS_ACQUIRE() args
            // are not lock expressions.
            if (!name.empty() && name != "true" && name != "false") {
              facts.guards.push_back({line, t.text, name});
            }
            arg_begin = j + 1;
          }
        }
      }

      // ---- MutexLock acquisition sites ---------------------------------
      if (t.text == "MutexLock" && i + 2 < toks.size() &&
          toks[i + 1].kind == TokenKind::kIdentifier &&
          PunctIs(toks, i + 2, "(")) {
        const size_t close = MatchParen(toks, i + 2);
        // First constructor argument = the mutex expression.
        size_t arg_end = close > 0 ? close - 1 : close;
        int depth = 0;
        for (size_t j = i + 3; j < close; ++j) {
          if (PunctIs(toks, j, "(")) ++depth;
          if (PunctIs(toks, j, ")")) --depth;
          if (PunctIs(toks, j, ",") && depth == 0) {
            arg_end = j;
            break;
          }
        }
        Acquisition a;
        a.line = line;
        a.expr = JoinTokens(toks, i + 3, arg_end);
        a.var = TrailingIdentifier(toks, i + 3, arg_end);
        a.scope = ScopePath(scopes);
        if (!a.var.empty()) {
          for (const ActiveLock& held : locks) {
            if (!held.held) continue;
            NestedPair p;
            p.line = line;
            p.outer_expr = held.expr;
            p.outer_var = held.mutex_var;
            p.outer_line = held.line;
            p.inner_expr = a.expr;
            p.inner_var = a.var;
            p.scope = a.scope;
            facts.nested.push_back(std::move(p));
          }
          ActiveLock al;
          al.var = toks[i + 1].text;
          al.expr = a.expr;
          al.mutex_var = a.var;
          al.line = line;
          al.depth = scopes.size();
          locks.push_back(std::move(al));
          facts.acquisitions.push_back(std::move(a));
        }
      }

      // ---- mid-scope lock.Unlock() / lock.Lock() -----------------------
      if (PunctIs(toks, i + 1, ".") && i + 3 < toks.size() &&
          toks[i + 2].kind == TokenKind::kIdentifier &&
          PunctIs(toks, i + 3, "(") &&
          (toks[i + 2].text == "Unlock" || toks[i + 2].text == "Lock")) {
        for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
          if (it->var == t.text) {
            it->held = (toks[i + 2].text == "Lock");
            break;
          }
        }
      }
      continue;
    }

    if (t.kind != TokenKind::kPunct) continue;
    const std::string& p = t.text;
    if (p == "(") {
      if (paren_depth == 0) {
        if (i > 0 && toks[i - 1].kind == TokenKind::kIdentifier &&
            !IsControlKeyword(toks[i - 1].text)) {
          fn_candidate = toks[i - 1].text;
        } else {
          fn_candidate.clear();
        }
        have_sig = false;
      }
      ++paren_depth;
    } else if (p == ")") {
      if (paren_depth > 0) --paren_depth;
      if (paren_depth == 0 && !fn_candidate.empty()) have_sig = true;
    } else if (p == ":" && paren_depth == 0 && !pending_tag.empty()) {
      pending_colon_seen = true;
    } else if (p == ";" && paren_depth == 0) {
      pending_tag.clear();
      pending_name.clear();
      pending_colon_seen = false;
      fn_candidate.clear();
      have_sig = false;
    } else if (p == "{") {
      // Braces inside parens (lambda bodies, brace-init arguments) push
      // plain block frames too: their `}` pops symmetrically, so a lock
      // taken inside a lambda does not outlive the lambda's body in the
      // analyzer's model the way it would if only depth-0 braces counted.
      ScopeFrame frame{ScopeFrame::kBlock, ""};
      if (paren_depth == 0) {
        if (pending_tag == "namespace") {
          frame = {ScopeFrame::kNamespace, pending_name};
        } else if (pending_tag == "class" && !pending_name.empty()) {
          frame = {ScopeFrame::kClass, pending_name};
        } else if (have_sig) {
          frame = {ScopeFrame::kFunction, fn_candidate};
        }
        pending_tag.clear();
        pending_name.clear();
        pending_colon_seen = false;
        fn_candidate.clear();
        have_sig = false;
      }
      scopes.push_back(std::move(frame));
    } else if (p == "}") {
      if (!scopes.empty()) scopes.pop_back();
      locks.erase(std::remove_if(locks.begin(), locks.end(),
                                 [&](const ActiveLock& l) {
                                   return l.depth > scopes.size();
                                 }),
                  locks.end());
    }
  }

  return facts;
}

}  // namespace ds::analysis

// Checked-in finding baselines: grandfather existing findings so a CI
// analyze job fails only on NEW ones.
//
// A baseline is a text file of Fingerprint() lines (rule, file, message,
// tab-separated; '#' comments allowed). Fingerprints carry no line number,
// so edits above a grandfathered finding do not resurface it; changing the
// finding's message (usually: fixing or moving the code) does, which is the
// desired nudge to actually clean it up. Stale entries — baseline lines no
// current finding matches — are counted so the file can be re-generated
// (--write-baseline) before it rots.

#ifndef DS_ANALYSIS_BASELINE_H_
#define DS_ANALYSIS_BASELINE_H_

#include <map>
#include <string>
#include <vector>

#include "ds/analysis/finding.h"

namespace ds::analysis {

struct Baseline {
  std::map<std::string, int> fingerprints;  // fingerprint -> multiplicity
};

/// Loads `path`. Returns false (stderr note) if unreadable.
bool LoadBaseline(const std::string& path, Baseline* out);

/// Returns the findings NOT covered by `baseline`, preserving order. Each
/// baseline entry suppresses at most its multiplicity. `suppressed` and
/// `stale` (entries with unmatched multiplicity) are always written.
std::vector<Finding> ApplyBaseline(const Baseline& baseline,
                                   const std::vector<Finding>& findings,
                                   size_t* suppressed, size_t* stale);

/// Serializes `findings` as a baseline file body (sorted, deduplicated with
/// multiplicity preserved as repeated lines).
std::string SerializeBaseline(const std::string& tool_name,
                              const std::vector<Finding>& findings);

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_BASELINE_H_

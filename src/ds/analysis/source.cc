#include "ds/analysis/source.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ds::analysis {

namespace fs = std::filesystem;

std::string StripCode(const std::string& in, StripMode mode) {
  const bool blank_comments = mode != StripMode::kStrings;
  const bool blank_strings = mode != StripMode::kComments;
  std::string out = in;
  enum class S { kCode, kLine, kBlock, kStr, kChar } st = S::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case S::kCode:
        if (c == '/' && next == '/') {
          st = S::kLine;
          if (blank_comments) out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = S::kBlock;
          if (blank_comments) out[i] = ' ';
        } else if (c == '"') {
          st = S::kStr;
          if (blank_strings) out[i] = ' ';
        } else if (c == '\'') {
          st = S::kChar;
          if (blank_strings) out[i] = ' ';
        }
        break;
      case S::kLine:
        if (c == '\n') {
          st = S::kCode;
        } else if (blank_comments) {
          out[i] = ' ';
        }
        break;
      case S::kBlock:
        if (c == '*' && next == '/') {
          if (blank_comments) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          st = S::kCode;
        } else if (blank_comments && c != '\n') {
          out[i] = ' ';
        }
        break;
      case S::kStr:
        if (c == '\\' && next != '\0') {
          if (blank_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          if (blank_strings) out[i] = ' ';
          st = S::kCode;
        } else if (blank_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
      case S::kChar:
        if (c == '\\' && next != '\0') {
          if (blank_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          if (blank_strings) out[i] = ' ';
          st = S::kCode;
        } else if (blank_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

size_t LineOfOffset(const std::string& text, size_t offset) {
  size_t line = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

namespace {

bool AnalyzableFile(const fs::path& p) {
  const std::string s = p.string();
  return EndsWith(s, ".h") || EndsWith(s, ".cc");
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

bool CollectSources(const std::vector<std::string>& roots,
                    std::vector<SourceFile>* out) {
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec) || !AnalyzableFile(it->path())) continue;
        SourceFile f;
        f.path = it->path().string();
        if (!ReadFile(f.path, &f.content)) {
          std::fprintf(stderr, "analysis: cannot read '%s'\n", f.path.c_str());
          return false;
        }
        out->push_back(std::move(f));
      }
    } else if (fs::is_regular_file(root, ec)) {
      SourceFile f;
      f.path = root;
      if (!ReadFile(f.path, &f.content)) {
        std::fprintf(stderr, "analysis: cannot read '%s'\n", f.path.c_str());
        return false;
      }
      out->push_back(std::move(f));
    } else {
      std::fprintf(stderr, "analysis: cannot open '%s'\n", root.c_str());
      return false;
    }
  }
  std::sort(out->begin(), out->end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return true;
}

}  // namespace ds::analysis

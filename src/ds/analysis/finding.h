// The finding record shared by ds_lint and ds_analyze, plus the stable
// fingerprint used by baseline files (see baseline.h).

#ifndef DS_ANALYSIS_FINDING_H_
#define DS_ANALYSIS_FINDING_H_

#include <cstddef>
#include <string>

namespace ds::analysis {

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Line-number-independent identity for baseline matching: inserting code
/// above a grandfathered finding must not resurface it. Two findings with
/// the same rule, file, and message are the same finding.
inline std::string Fingerprint(const Finding& f) {
  return f.rule + "\t" + f.file + "\t" + f.message;
}

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_FINDING_H_

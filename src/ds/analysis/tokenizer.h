// A flat C++ token stream for the analyzers.
//
// Not a real lexer — it runs over StripCode'd text (comments blanked,
// string/char literals reduced to their quote marks) and classifies what is
// left into identifiers, numbers, string stubs, and punctuation. That is
// exactly enough for the pattern-level analyses the repo's tools do
// (declaration harvesting, acquisition-site scanning, scope tracking)
// while staying a few hundred lines instead of a compiler frontend.

#ifndef DS_ANALYSIS_TOKENIZER_H_
#define DS_ANALYSIS_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ds::analysis {

enum class TokenKind {
  kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*  (keywords included)
  kNumber,      // [0-9][A-Za-z0-9_.']*    (good enough for 0x1f, 1'000, 1e-3)
  kString,      // a blanked "..." or '...' literal (text is the quotes only)
  kPunct,       // one operator/punctuator: multi-char ::, ->, <<, etc.
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;  // byte offset into the (stripped) input
};

/// Tokenizes text already passed through StripCode(kCommentsAndStrings).
/// Preprocessor directives are kept as ordinary tokens (`#`, `include`, ...).
std::vector<Token> Tokenize(const std::string& stripped);

/// True when tokens[i] is an identifier with exactly this text.
bool TokenIs(const std::vector<Token>& tokens, size_t i, const char* text);

/// True when tokens[i] is punctuation with exactly this text.
bool PunctIs(const std::vector<Token>& tokens, size_t i, const char* text);

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_TOKENIZER_H_

#include "ds/analysis/baseline.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace ds::analysis {

bool LoadBaseline(const std::string& path, Baseline* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "analysis: cannot read baseline '%s'\n",
                 path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++out->fingerprints[line];
  }
  return true;
}

std::vector<Finding> ApplyBaseline(const Baseline& baseline,
                                   const std::vector<Finding>& findings,
                                   size_t* suppressed, size_t* stale) {
  std::map<std::string, int> remaining = baseline.fingerprints;
  std::vector<Finding> surviving;
  *suppressed = 0;
  for (const Finding& f : findings) {
    auto it = remaining.find(Fingerprint(f));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      ++*suppressed;
    } else {
      surviving.push_back(f);
    }
  }
  *stale = 0;
  for (const auto& [fp, count] : remaining) {
    (void)fp;
    if (count > 0) *stale += static_cast<size_t>(count);
  }
  return surviving;
}

std::string SerializeBaseline(const std::string& tool_name,
                              const std::vector<Finding>& findings) {
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) lines.push_back(Fingerprint(f));
  std::sort(lines.begin(), lines.end());
  std::string out;
  out += "# " + tool_name +
         " baseline: grandfathered findings (rule<TAB>file<TAB>message).\n";
  out += "# Regenerate with --write-baseline after deliberate changes; new\n";
  out += "# findings must be fixed, not appended here.\n";
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace ds::analysis

#include "ds/analysis/sarif.h"

#include <cstdio>
#include <set>

namespace ds::analysis {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string ToSarif(const std::string& tool_name,
                    const std::string& tool_version,
                    const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);

  std::string out;
  out.reserve(1024 + findings.size() * 256);
  out +=
      "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"";
  AppendEscaped(&out, tool_name);
  out += "\",\"version\":\"";
  AppendEscaped(&out, tool_version);
  out += "\",\"informationUri\":\"https://example.com/deepsketch\","
         "\"rules\":[";
  bool first = true;
  for (const std::string& rule : rules) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"";
    AppendEscaped(&out, rule);
    out += "\",\"defaultConfiguration\":{\"level\":\"error\"}}";
  }
  out += "]}},\"results\":[";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"ruleId\":\"";
    AppendEscaped(&out, f.rule);
    out += "\",\"level\":\"error\",\"message\":{\"text\":\"";
    AppendEscaped(&out, f.message);
    out += "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
           "{\"uri\":\"";
    AppendEscaped(&out, f.file);
    out += "\"},\"region\":{\"startLine\":";
    out += std::to_string(f.line == 0 ? 1 : f.line);
    out += "}}}]}";
  }
  out += "]}]}\n";
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "analysis: cannot write '%s'\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok) std::fprintf(stderr, "analysis: short write to '%s'\n", path.c_str());
  return ok;
}

}  // namespace ds::analysis

// Source-text plumbing shared by the repo's analyzers (tools/ds_lint,
// tools/ds_analyze). Extracted from ds_lint's scanner so both tools strip,
// split, and walk files identically.
//
// Everything here is pure text: no dependency on the deepsketch library, so
// the analyzers build (and can lint/analyze the tree) even while the
// library itself is broken.

#ifndef DS_ANALYSIS_SOURCE_H_
#define DS_ANALYSIS_SOURCE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ds::analysis {

/// What StripCode blanks. Offsets and newlines are always preserved so
/// findings keep real line numbers.
enum class StripMode {
  kComments,             // comments blanked, string/char literals intact
  kCommentsAndStrings,   // both blanked (the default for code-pattern rules)
  kStrings,              // string/char literals blanked, comments intact
};

/// Replaces the selected regions with spaces. A comment-aware rule runs on
/// kCommentsAndStrings text; name-extraction rules (metric names, span
/// names) use kComments; suppression scans (NOLINT lives in comments, but
/// must not fire on "NOLINT" inside a string literal) use kStrings.
std::string StripCode(const std::string& in, StripMode mode);

/// `text` split at '\n' (trailing fragment included).
std::vector<std::string> SplitLines(const std::string& text);

/// 1-based line number of byte `offset` in `text`.
size_t LineOfOffset(const std::string& text, size_t offset);

bool EndsWith(const std::string& s, const char* suffix);

/// One file handed to an analyzer pass.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Recursively collects .h/.cc files under each root (a root may also be a
/// single file). Returns false (and prints to stderr) if a root does not
/// exist. Paths come back sorted so runs are deterministic regardless of
/// directory iteration order.
bool CollectSources(const std::vector<std::string>& roots,
                    std::vector<SourceFile>* out);

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_SOURCE_H_

// Per-file fact harvesting for ds_analyze's lock-order pass.
//
// HarvestFacts runs the shared Tokenizer over one stripped source file and
// extracts the concurrency-relevant facts without building an AST:
//
//   * ds::util::Mutex member/global declarations, with the LockRank symbol
//     when the declaration is brace-initialized with one
//   * every `LockRank::kFoo` reference (for manifest cross-checks)
//   * thread-safety annotation bindings (DS_GUARDED_BY(mu_), ...) and the
//     mutex name each one targets
//   * MutexLock acquisition sites, with the enclosing scope path and —
//     via live brace/paren tracking — every *nested* acquisition pair
//     (lock B taken while lock A of the same function is still held),
//     honoring mid-scope lock.Unlock()/lock.Lock()
//
// ParseManifest reads the machine-readable rank table out of
// src/ds/util/lock_order.h (the X-macro rows; see that file's layout note).
//
// The harvest is heuristic by design — it tracks lexical scope, not control
// flow, and only sees nesting within one function body. Cross-function
// nesting is the runtime lockdep's job (ds/util/lockdep.h); this pass is
// the cheap whole-repo net that catches ordering bugs before they run.

#ifndef DS_ANALYSIS_FACTS_H_
#define DS_ANALYSIS_FACTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ds/analysis/source.h"

namespace ds::analysis {

/// One X(symbol, rank, name, holder) row of DS_LOCK_RANK_TABLE.
struct ManifestEntry {
  std::string symbol;  // kNetServerStop
  int rank = 0;        // 100
  std::string name;    // "net.server.stop"
  std::string holder;  // "net::NetServer::stop_mu_"
  size_t line = 0;     // row's line in the manifest header
};

struct Manifest {
  std::string file;
  std::vector<ManifestEntry> entries;

  const ManifestEntry* FindSymbol(const std::string& symbol) const;
  const ManifestEntry* FindName(const std::string& name) const;
};

/// Parses the rank table. Returns false when `f` holds no
/// DS_LOCK_RANK_TABLE (i.e. it is not the manifest).
bool ParseManifest(const SourceFile& f, Manifest* out);

/// A ds::util::Mutex (or bare Mutex) variable declaration.
struct MutexDecl {
  size_t line = 0;
  std::string var;          // mu_, stop_mu_, ...
  std::string rank_symbol;  // kServeServerStop; empty = unranked
  std::string scope;        // "ds::serve::SketchServer" best-effort
};

/// One `LockRank::kFoo` appearance.
struct RankRef {
  size_t line = 0;
  std::string symbol;
};

/// One thread-safety annotation argument: DS_GUARDED_BY(mu_) binds to
/// mutex_name "mu_"; DS_EXCLUDES(a, b) yields two bindings.
struct GuardBinding {
  size_t line = 0;
  std::string macro;
  std::string mutex_name;
};

/// One `MutexLock guard(&expr)` site.
struct Acquisition {
  size_t line = 0;
  std::string expr;   // "&shard->mu" as written
  std::string var;    // trailing identifier: "mu"
  std::string scope;  // enclosing function path, best-effort
};

/// Lock `inner` taken while `outer` (same function body) is still held.
struct NestedPair {
  size_t line = 0;  // inner acquisition site
  std::string outer_expr;
  std::string outer_var;
  size_t outer_line = 0;
  std::string inner_expr;
  std::string inner_var;
  std::string scope;
};

struct FileFacts {
  std::string path;
  std::vector<MutexDecl> mutexes;
  std::vector<RankRef> rank_refs;
  std::vector<GuardBinding> guards;
  std::vector<Acquisition> acquisitions;
  std::vector<NestedPair> nested;
  std::vector<size_t> exempt_lines;  // NOLINT(ds-analyze) lines, sorted
};

FileFacts HarvestFacts(const SourceFile& f);

bool LineIsExempt(const FileFacts& facts, size_t line);

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_FACTS_H_

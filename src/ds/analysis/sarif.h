// SARIF 2.1.0 emission for the repo's analyzers, so findings land in code
// scanning UIs (GitHub uploads, VS Code SARIF viewers) instead of only on
// stderr. One run, one tool, results ordered as given.

#ifndef DS_ANALYSIS_SARIF_H_
#define DS_ANALYSIS_SARIF_H_

#include <string>
#include <vector>

#include "ds/analysis/finding.h"

namespace ds::analysis {

/// Serializes `findings` as a SARIF 2.1.0 log. `tool_name` becomes
/// tool.driver.name ("ds_lint", "ds_analyze"); each distinct rule id gets a
/// driver.rules entry. Every result is level "error" — both tools treat any
/// finding as failing.
std::string ToSarif(const std::string& tool_name,
                    const std::string& tool_version,
                    const std::vector<Finding>& findings);

/// Writes `content` to `path`. Returns false (with a stderr note) on error.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_SARIF_H_

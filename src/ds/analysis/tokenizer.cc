#include "ds/analysis/tokenizer.h"

#include <cctype>

namespace ds::analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNumberChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '\'';
}

/// Multi-character punctuators the analyses care about distinguishing.
/// Everything else is emitted one character at a time.
const char* const kMultiPunct[] = {"::", "->", "<<=", ">>=", "<<", ">>",
                                   "<=", ">=", "==", "!=", "&&", "||",
                                   "+=", "-=", "*=", "/=", "++", "--"};

}  // namespace

std::vector<Token> Tokenize(const std::string& stripped) {
  std::vector<Token> tokens;
  const size_t n = stripped.size();
  size_t i = 0;
  while (i < n) {
    const char c = stripped[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(stripped[j])) ++j;
      tokens.push_back({TokenKind::kIdentifier, stripped.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && IsNumberChar(stripped[j])) ++j;
      tokens.push_back({TokenKind::kNumber, stripped.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      // StripCode left only the delimiters; the matching close quote is the
      // next occurrence of the same character (escapes were blanked too).
      size_t j = i + 1;
      while (j < n && stripped[j] != c) ++j;
      if (j < n) ++j;
      tokens.push_back({TokenKind::kString, stripped.substr(i, j - i), i});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* p : kMultiPunct) {
      const size_t len = std::string(p).size();
      if (stripped.compare(i, len, p) == 0) {
        tokens.push_back({TokenKind::kPunct, p, i});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      tokens.push_back({TokenKind::kPunct, std::string(1, c), i});
      ++i;
    }
  }
  return tokens;
}

bool TokenIs(const std::vector<Token>& tokens, size_t i, const char* text) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier &&
         tokens[i].text == text;
}

bool PunctIs(const std::vector<Token>& tokens, size_t i, const char* text) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kPunct &&
         tokens[i].text == text;
}

}  // namespace ds::analysis

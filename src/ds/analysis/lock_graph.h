// The static lock-order graph and its checks.
//
// BuildLockGraph resolves every nested-acquisition pair harvested by
// facts.h to a *lock class* — the manifest rank symbol when the mutex
// declaration carries one, else the declaration site itself — and adds an
// acquired-after edge. CheckLockOrder then reports:
//
//   lock-rank-inversion   an edge from a ranked class to one of equal or
//                         lower rank (ranks must strictly rise inward)
//   lock-cycle            a cycle through at least one unranked class (a
//                         ranked-only cycle necessarily contains an
//                         inversion, reported above)
//   lock-rank-unknown     LockRank::kFoo referenced but not in the manifest
//   lock-rank-stale       a manifest row no swept file references
//   annotation-unknown-mutex
//                         DS_GUARDED_BY/DS_REQUIRES/... naming a mutex that
//                         is not declared in the same file (or its paired
//                         header/source)
//
// CheckObservedGraph diffs a runtime lockdep dump (lock_order.json,
// ds/util/lockdep.h WriteObservedGraph) against the manifest: observed
// classes must exist, observed edges must rise in rank, and a dump with
// recorded violations is itself a finding — so CI can assert that what the
// soak actually locked matches what the tree declares.

#ifndef DS_ANALYSIS_LOCK_GRAPH_H_
#define DS_ANALYSIS_LOCK_GRAPH_H_

#include <string>
#include <vector>

#include "ds/analysis/facts.h"
#include "ds/analysis/finding.h"

namespace ds::analysis {

/// All lock-order checks over the harvested facts. `manifest.entries` may
/// be empty (no manifest in the sweep), in which case only the cycle and
/// annotation checks can fire.
std::vector<Finding> CheckLockOrder(const Manifest& manifest,
                                    const std::vector<FileFacts>& facts);

/// Diffs a runtime lockdep JSON dump against the manifest. `path` is used
/// for finding locations; `json` is the dump's content.
std::vector<Finding> CheckObservedGraph(const std::string& path,
                                        const std::string& json,
                                        const Manifest& manifest);

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_LOCK_GRAPH_H_

#include "ds/analysis/lock_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace ds::analysis {

namespace {

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

/// "src/ds/serve/server.cc" -> "server", pairing a .cc with its header.
std::string Stem(const std::string& path) {
  std::string base = Basename(path);
  const size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base.resize(dot);
  return base;
}

struct DeclRef {
  const FileFacts* file = nullptr;
  const MutexDecl* decl = nullptr;
};

/// A node of the lock-order graph: a manifest rank symbol when the resolved
/// declaration carries one, else the declaration (or, unresolved, the use
/// site) itself.
struct Node {
  std::string key;
  std::string display;                  // for messages
  const ManifestEntry* entry = nullptr;  // null = unranked
};

struct Edge {
  std::string to;
  // Example site, for the report.
  std::string file;
  size_t line = 0;
  std::string outer_expr;
  std::string inner_expr;
  std::string scope;
};

class Resolver {
 public:
  Resolver(const Manifest& manifest, const std::vector<FileFacts>& facts)
      : manifest_(manifest) {
    for (const FileFacts& f : facts) {
      for (const MutexDecl& d : f.mutexes) {
        by_var_[d.var].push_back({&f, &d});
      }
    }
  }

  /// Declaration candidates for `var` as seen from `site_file`: same file,
  /// then the paired header/source (same stem, same directory), then the
  /// same directory, then a globally unique match.
  const DeclRef* Resolve(const std::string& site_file,
                         const std::string& var) const {
    auto it = by_var_.find(var);
    if (it == by_var_.end()) return nullptr;
    const std::vector<DeclRef>& cands = it->second;
    const std::string dir = Dirname(site_file);
    const std::string stem = Stem(site_file);
    const DeclRef* best = nullptr;
    for (const DeclRef& c : cands) {  // same file
      if (c.file->path == site_file) {
        if (best != nullptr) return nullptr;  // ambiguous within one file
        best = &c;
      }
    }
    if (best != nullptr) return best;
    for (const DeclRef& c : cands) {  // paired header/source
      if (Dirname(c.file->path) == dir && Stem(c.file->path) == stem) {
        if (best != nullptr) return nullptr;
        best = &c;
      }
    }
    if (best != nullptr) return best;
    for (const DeclRef& c : cands) {  // same directory
      if (Dirname(c.file->path) == dir) {
        if (best != nullptr) return nullptr;
        best = &c;
      }
    }
    if (best != nullptr) return best;
    return cands.size() == 1 ? &cands[0] : nullptr;
  }

  Node NodeFor(const std::string& site_file, const std::string& var,
               const std::string& expr) const {
    const DeclRef* d = Resolve(site_file, var);
    Node n;
    if (d != nullptr && !d->decl->rank_symbol.empty()) {
      n.key = "rank:" + d->decl->rank_symbol;
      n.entry = manifest_.FindSymbol(d->decl->rank_symbol);
      n.display = d->decl->rank_symbol;
      if (n.entry != nullptr) {
        n.display += " ('" + n.entry->name + "', rank " +
                     std::to_string(n.entry->rank) + ")";
      }
    } else if (d != nullptr) {
      n.key = "decl:" + d->file->path + ":" + d->decl->var;
      n.display = "unranked mutex '" + d->decl->var + "' (" +
                  Basename(d->file->path) + ":" +
                  std::to_string(d->decl->line) + ")";
    } else {
      n.key = "expr:" + Stem(site_file) + ":" + var;
      n.display = "unresolved mutex expression '" + expr + "'";
    }
    return n;
  }

 private:
  const Manifest& manifest_;
  std::map<std::string, std::vector<DeclRef>> by_var_;
};

}  // namespace

std::vector<Finding> CheckLockOrder(const Manifest& manifest,
                                    const std::vector<FileFacts>& facts) {
  std::vector<Finding> findings;
  Resolver resolver(manifest, facts);
  const std::string manifest_name =
      manifest.entries.empty() ? "the lock-order manifest"
                               : Basename(manifest.file);

  // ---- rank reference cross-checks -----------------------------------------
  std::set<std::string> referenced;
  for (const FileFacts& f : facts) {
    for (const RankRef& r : f.rank_refs) {
      referenced.insert(r.symbol);
      if (LineIsExempt(f, r.line)) continue;
      if (!manifest.entries.empty() &&
          manifest.FindSymbol(r.symbol) == nullptr) {
        findings.push_back(
            {f.path, r.line, "lock-rank-unknown",
             "LockRank::" + r.symbol +
                 " is not a row of DS_LOCK_RANK_TABLE (" +
                 Basename(manifest.file) +
                 "); add it to the manifest so the rank is documented and "
                 "checkable"});
      }
    }
  }
  for (const ManifestEntry& e : manifest.entries) {
    if (referenced.count(e.symbol) == 0) {
      findings.push_back(
          {manifest.file, e.line, "lock-rank-stale",
           "manifest row " + e.symbol + " ('" + e.name +
               "', holder " + e.holder +
               ") is referenced by no swept mutex declaration; delete the "
               "row or rank the mutex it describes"});
    }
  }

  // ---- annotation bindings -------------------------------------------------
  {
    // Mutex names visible to a file: its own plus its paired header/source
    // (annotations repeated on out-of-line definitions).
    std::map<std::string, std::set<std::string>> vars_by_file;
    for (const FileFacts& f : facts) {
      for (const MutexDecl& d : f.mutexes) {
        vars_by_file[f.path].insert(d.var);
      }
    }
    for (const FileFacts& f : facts) {
      std::set<std::string> visible = vars_by_file[f.path];
      const std::string dir = Dirname(f.path);
      const std::string stem = Stem(f.path);
      for (const FileFacts& other : facts) {
        if (other.path != f.path && Dirname(other.path) == dir &&
            Stem(other.path) == stem) {
          const auto& more = vars_by_file[other.path];
          visible.insert(more.begin(), more.end());
        }
      }
      for (const GuardBinding& g : f.guards) {
        if (LineIsExempt(f, g.line)) continue;
        if (visible.count(g.mutex_name) != 0) continue;
        findings.push_back(
            {f.path, g.line, "annotation-unknown-mutex",
             g.macro + "(" + g.mutex_name +
                 ") names no ds::util::Mutex declared in this file or its "
                 "paired header/source; the annotation guards nothing"});
      }
    }
  }

  // ---- the acquired-after graph --------------------------------------------
  std::map<std::string, Node> nodes;
  std::map<std::string, std::vector<Edge>> adjacency;
  for (const FileFacts& f : facts) {
    for (const NestedPair& p : f.nested) {
      if (LineIsExempt(f, p.line) || LineIsExempt(f, p.outer_line)) continue;
      Node outer = resolver.NodeFor(f.path, p.outer_var, p.outer_expr);
      Node inner = resolver.NodeFor(f.path, p.inner_var, p.inner_expr);
      if (outer.key == inner.key &&
          (outer.entry == nullptr || inner.entry == nullptr)) {
        // Same unranked class nested in itself: usually two distinct
        // instances (shard stripes). Rank discipline for instances of one
        // class is the runtime lockdep's call; statically stay quiet.
        continue;
      }
      nodes.emplace(outer.key, outer);
      nodes.emplace(inner.key, inner);
      adjacency[outer.key].push_back(
          {inner.key, f.path, p.line, p.outer_expr, p.inner_expr, p.scope});
    }
  }

  // ---- rank inversions -----------------------------------------------------
  for (const auto& [from_key, edges] : adjacency) {
    const Node& from = nodes.at(from_key);
    // One finding per (from, to) class pair, not per site.
    std::set<std::string> reported;
    for (const Edge& e : edges) {
      const Node& to = nodes.at(e.to);
      if (from.entry == nullptr || to.entry == nullptr) continue;
      if (to.entry->rank > from.entry->rank) continue;
      if (!reported.insert(e.to).second) continue;
      const bool equal = to.entry->rank == from.entry->rank;
      findings.push_back(
          {e.file, e.line, "lock-rank-inversion",
           "acquiring " + to.display + " via '" + e.inner_expr +
               "' while holding " + from.display + " ('" + e.outer_expr +
               "', " + (e.scope.empty() ? "file scope" : e.scope) + ") " +
               (equal ? "— same-rank locks must never be held together"
                      : "— acquired-after ranks must strictly rise") +
               "; see " + manifest_name});
    }
  }

  // ---- cycles through unranked classes -------------------------------------
  {
    enum Color { kWhite, kGray, kBlack };
    std::map<std::string, Color> color;
    for (const auto& [key, node] : nodes) {
      (void)node;
      color[key] = kWhite;
    }
    std::set<std::string> reported_edges;
    // Iterative DFS with an explicit path stack, deterministic by key order.
    for (const auto& [root, root_node] : nodes) {
      (void)root_node;
      if (color[root] != kWhite) continue;
      struct StackItem {
        std::string key;
        size_t next_edge = 0;
      };
      std::vector<StackItem> stack{{root, 0}};
      color[root] = kGray;
      while (!stack.empty()) {
        StackItem& top = stack.back();
        const std::vector<Edge>& edges = adjacency[top.key];
        if (top.next_edge >= edges.size()) {
          color[top.key] = kBlack;
          stack.pop_back();
          continue;
        }
        const Edge& e = edges[top.next_edge++];
        if (color[e.to] == kGray) {
          // Back edge: the path from e.to to top.key plus this edge cycles.
          size_t start = 0;
          while (start < stack.size() && stack[start].key != e.to) ++start;
          bool has_unranked = false;
          std::string cycle;
          for (size_t i = start; i < stack.size(); ++i) {
            const Node& n = nodes.at(stack[i].key);
            if (n.entry == nullptr) has_unranked = true;
            cycle += n.display + " -> ";
          }
          cycle += nodes.at(e.to).display;
          const std::string edge_id = top.key + "=>" + e.to;
          if (has_unranked && reported_edges.insert(edge_id).second) {
            findings.push_back(
                {e.file, e.line, "lock-cycle",
                 "potential deadlock: lock-order cycle " + cycle +
                     " (this edge: '" + e.outer_expr + "' then '" +
                     e.inner_expr + "' in " +
                     (e.scope.empty() ? "file scope" : e.scope) +
                     "); rank the mutexes in " + manifest_name +
                     " or break the nesting"});
          }
        } else if (color[e.to] == kWhite) {
          color[e.to] = kGray;
          stack.push_back({e.to, 0});
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

// ---- observed-graph diff ---------------------------------------------------

namespace {

/// Just enough JSON reading for lockdep's own dump format (lockdep.cc
/// ObservedGraphJson): objects with string/number fields, inside "classes"
/// and "edges" arrays. Not a general parser — unknown input yields a
/// parse-error finding rather than undefined behavior.
struct JsonScanner {
  const std::string& text;
  size_t pos = 0;

  explicit JsonScanner(const std::string& t) : text(t) {}

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ReadString(std::string* out) {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        ++pos;
        switch (text[pos]) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          default: *out += text[pos]; break;
        }
      } else {
        *out += text[pos];
      }
      ++pos;
    }
    if (pos >= text.size()) return false;
    ++pos;  // closing quote
    return true;
  }

  bool ReadNumber(long long* out) {
    SkipWs();
    size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (pos == start) return false;
    *out = std::stoll(text.substr(start, pos - start));
    return true;
  }
};

struct ObservedClass {
  std::string name;
  long long rank = 0;
  std::string holder;
};

struct ObservedEdge {
  std::string from;
  std::string to;
  long long count = 0;
};

struct ObservedGraph {
  std::vector<ObservedClass> classes;
  std::vector<ObservedEdge> edges;
  long long violations = 0;
};

/// Reads one {"k":v,...} object, dispatching fields via `field`.
template <typename FieldFn>
bool ReadObject(JsonScanner* s, FieldFn field) {
  if (!s->Consume('{')) return false;
  if (s->Consume('}')) return true;
  do {
    std::string key;
    if (!s->ReadString(&key) || !s->Consume(':')) return false;
    if (!field(key, s)) return false;
  } while (s->Consume(','));
  return s->Consume('}');
}

template <typename ItemFn>
bool ReadArray(JsonScanner* s, ItemFn item) {
  if (!s->Consume('[')) return false;
  s->SkipWs();
  if (s->Consume(']')) return true;
  do {
    if (!item(s)) return false;
  } while (s->Consume(','));
  return s->Consume(']');
}

bool ParseObservedGraph(const std::string& json, ObservedGraph* out) {
  JsonScanner s(json);
  return ReadObject(&s, [&](const std::string& key, JsonScanner* sc) {
    if (key == "classes") {
      return ReadArray(sc, [&](JsonScanner* el) {
        ObservedClass c;
        if (!ReadObject(el, [&](const std::string& k, JsonScanner* v) {
              if (k == "name") return v->ReadString(&c.name);
              if (k == "rank") return v->ReadNumber(&c.rank);
              if (k == "holder") return v->ReadString(&c.holder);
              return false;
            })) {
          return false;
        }
        out->classes.push_back(std::move(c));
        return true;
      });
    }
    if (key == "edges") {
      return ReadArray(sc, [&](JsonScanner* el) {
        ObservedEdge e;
        if (!ReadObject(el, [&](const std::string& k, JsonScanner* v) {
              if (k == "from") return v->ReadString(&e.from);
              if (k == "to") return v->ReadString(&e.to);
              if (k == "count") return v->ReadNumber(&e.count);
              return false;
            })) {
          return false;
        }
        out->edges.push_back(std::move(e));
        return true;
      });
    }
    if (key == "violations") return sc->ReadNumber(&out->violations);
    return false;
  });
}

}  // namespace

std::vector<Finding> CheckObservedGraph(const std::string& path,
                                        const std::string& json,
                                        const Manifest& manifest) {
  std::vector<Finding> findings;
  ObservedGraph g;
  if (!ParseObservedGraph(json, &g)) {
    findings.push_back({path, 1, "observed-parse-error",
                        "not a lockdep observed-graph dump (expected the "
                        "lock_order.json shape WriteObservedGraph emits)"});
    return findings;
  }
  if (g.violations != 0) {
    findings.push_back(
        {path, 1, "observed-violations",
         "the runtime lockdep recorded " + std::to_string(g.violations) +
             " ordering violation(s) during the run that produced this "
             "dump; its stderr has the acquisition stacks"});
  }
  for (const ObservedClass& c : g.classes) {
    const ManifestEntry* e = manifest.FindName(c.name);
    if (e == nullptr) {
      findings.push_back(
          {path, 1, "observed-unknown-class",
           "observed lock class '" + c.name +
               "' is not in DS_LOCK_RANK_TABLE; the dump and the manifest "
               "disagree about what locks exist"});
    } else if (e->rank != c.rank) {
      findings.push_back(
          {path, 1, "observed-rank-drift",
           "observed lock class '" + c.name + "' has rank " +
               std::to_string(c.rank) + " but the manifest declares " +
               std::to_string(e->rank) +
               "; the binary that wrote the dump ran a different table"});
    }
  }
  for (const ObservedEdge& e : g.edges) {
    const ManifestEntry* from = manifest.FindName(e.from);
    const ManifestEntry* to = manifest.FindName(e.to);
    if (from == nullptr || to == nullptr) continue;  // reported above
    if (to->rank <= from->rank) {
      findings.push_back(
          {path, 1, "observed-order-violation",
           "the runtime observed '" + e.to + "' (rank " +
               std::to_string(to->rank) + ") acquired while '" + e.from +
               "' (rank " + std::to_string(from->rank) + ") was held, " +
               std::to_string(e.count) +
               " time(s); acquired-after ranks must strictly rise"});
    }
  }
  return findings;
}

}  // namespace ds::analysis

// Lock-free parallel file scanning for the analyzers.
//
// Work is pre-partitioned round-robin across `jobs` threads and every
// thread writes only to indices it owns, so there is no shared mutable
// state and no locking — the analyzers stay out of the very business
// (mutex discipline) they exist to check. Results land in caller-owned
// per-index slots; merge order is the deterministic input order, so
// parallel and serial runs produce byte-identical reports.

#ifndef DS_ANALYSIS_SCAN_H_
#define DS_ANALYSIS_SCAN_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace ds::analysis {

/// Calls fn(i) once for every i in [0, count), spread over `jobs` threads
/// (round-robin by index). jobs <= 1 runs inline. `fn` must only touch
/// state owned by index i.
template <typename Fn>
void ParallelScan(size_t count, int jobs, Fn fn) {
  if (jobs <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const size_t workers =
      std::min(static_cast<size_t>(jobs), count);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t t = 0; t < workers; ++t) {
    threads.emplace_back([t, workers, count, &fn] {
      for (size_t i = t; i < count; i += workers) fn(i);
    });
  }
  for (std::thread& th : threads) th.join();
}

}  // namespace ds::analysis

#endif  // DS_ANALYSIS_SCAN_H_

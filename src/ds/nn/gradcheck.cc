#include "ds/nn/gradcheck.h"

#include <cmath>

namespace ds::nn {

GradCheckResult CheckParameterGradient(
    Parameter* param, const std::function<double()>& loss_fn,
    double epsilon) {
  GradCheckResult result;
  float* w = param->value.data();
  const float* g = param->grad.data();
  for (size_t i = 0; i < param->value.size(); ++i) {
    const float saved = w[i];
    w[i] = saved + static_cast<float>(epsilon);
    const double up = loss_fn();
    w[i] = saved - static_cast<float>(epsilon);
    const double down = loss_fn();
    w[i] = saved;
    const double numeric = (up - down) / (2.0 * epsilon);
    const double analytic = static_cast<double>(g[i]);
    const double abs_err = std::abs(numeric - analytic);
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    const double denom = std::max(std::abs(numeric), std::abs(analytic));
    if (denom > 1e-4) {
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
    ++result.checked;
  }
  return result;
}

}  // namespace ds::nn

// AVX2+FMA kernel tier: same loop structure as the AVX2 tier but every
// multiply-add contracts to VFMADD (one rounding instead of two), so it is
// faster and *tolerance*-equal to the bit-stable tiers, never bit-equal.
// Opt-in via DS_KERNEL_TIER=fma|native; bench_nn_kernels check=1 gates the
// parity bound.
//
// Compiled with -mavx2 -mfma -mf16c via per-file flags; degrades to a stub
// without them.

#include "ds/nn/kernels_dispatch.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)

#include <immintrin.h>

#define DS_TIER_NS avx2_fma
#define DS_TIER_SIMD 256
#define DS_TIER_FMA 1
#include "ds/nn/kernels_tier.inl"

namespace ds::nn::detail {

const KernelOps* GetAvx2FmaOps() { return avx2_fma::TierOps(); }

}  // namespace ds::nn::detail

#else  // !(__AVX2__ && __FMA__ && __F16C__)

namespace ds::nn::detail {

const KernelOps* GetAvx2FmaOps() { return nullptr; }

}  // namespace ds::nn::detail

#endif

#include "ds/nn/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ds/nn/kernels_dispatch.h"
#include "ds/util/contract.h"
#include "ds/util/cpuid.h"

namespace ds::nn {

KernelStats& GlobalKernelStats() {
  static KernelStats* stats = new KernelStats();
  return *stats;
}

namespace {

void CountKernel(std::atomic<uint64_t>& which, uint64_t macs, uint64_t bytes) {
  KernelStats& s = GlobalKernelStats();
  which.fetch_add(1, std::memory_order_relaxed);
  s.flops.fetch_add(2 * macs, std::memory_order_relaxed);
  s.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

constexpr int kNumTiers = 4;

// Tables for every tier this process can actually run: compiled in
// (non-null getter) AND supported by CPU + OS state saving. Computed once.
const detail::KernelOps* const* AvailableOps() {
  static const detail::KernelOps* const* table = [] {
    static const detail::KernelOps* ops[kNumTiers] = {};
    const util::CpuFeatures& f = util::DetectCpuFeatures();
    ops[0] = detail::GetGenericOps();
    DS_REQUIRE(ops[0] != nullptr, "generic kernel tier missing from binary");
    if (f.avx2 && f.f16c) {
      ops[1] = detail::GetAvx2Ops();
      if (f.fma) ops[2] = detail::GetAvx2FmaOps();
      if (f.avx512f && f.avx512bw && f.avx512vl && f.fma) {
        ops[3] = detail::GetAvx512Ops();
      }
    }
    return static_cast<const detail::KernelOps* const*>(ops);
  }();
  return table;
}

/// Best tier whose fp32 numerics are bit-identical to the references
/// (generic/AVX2 — never FMA), i.e. the safe default.
KernelTier BestBitStableTier() {
  return AvailableOps()[1] != nullptr ? KernelTier::kAvx2
                                      : KernelTier::kGeneric;
}

KernelTier ResolveTierFromEnv() {
  const KernelTier fallback = BestBitStableTier();
  const char* env = std::getenv("DS_KERNEL_TIER");
  if (env == nullptr || *env == '\0') return fallback;
  const std::string req(env);
  const detail::KernelOps* const* ops = AvailableOps();
  if (req == "native") {
    for (int t = kNumTiers - 1; t >= 0; --t) {
      if (ops[t] != nullptr) return static_cast<KernelTier>(t);
    }
  }
  int want = -1;
  if (req == "generic") want = 0;
  else if (req == "avx2") want = 1;
  else if (req == "fma" || req == "avx2fma" || req == "avx2+fma") want = 2;
  else if (req == "avx512") want = 3;
  if (want < 0) {
    std::fprintf(stderr,
                 "[ds] DS_KERNEL_TIER='%s' not recognized (want generic, "
                 "avx2, fma, avx512, or native); using %s\n",
                 env, KernelTierName(fallback));
    return fallback;
  }
  if (ops[want] == nullptr) {
    std::fprintf(stderr,
                 "[ds] DS_KERNEL_TIER=%s is not available on this "
                 "CPU/build; using %s\n",
                 env, KernelTierName(fallback));
    return fallback;
  }
  return static_cast<KernelTier>(want);
}

// Active tier index; -1 until first use. Resolution races are benign: every
// racer computes the same value (thread-safe function-local static).
std::atomic<int> g_tier{-1};

int ActiveTierIndex() {
  int t = g_tier.load(std::memory_order_acquire);
  if (t < 0) {
    static const int resolved = static_cast<int>(ResolveTierFromEnv());
    g_tier.store(resolved, std::memory_order_release);
    t = resolved;
  }
  return t;
}

const detail::KernelOps& Ops() { return *AvailableOps()[ActiveTierIndex()]; }

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kGeneric: return "generic";
    case KernelTier::kAvx2: return "avx2";
    case KernelTier::kAvx2Fma: return "fma";
    case KernelTier::kAvx512: return "avx512";
  }
  return "unknown";
}

std::vector<KernelTier> AvailableKernelTiers() {
  std::vector<KernelTier> tiers;
  const detail::KernelOps* const* ops = AvailableOps();
  for (int t = 0; t < kNumTiers; ++t) {
    if (ops[t] != nullptr) tiers.push_back(static_cast<KernelTier>(t));
  }
  return tiers;
}

KernelTier ActiveKernelTier() {
  return static_cast<KernelTier>(ActiveTierIndex());
}

bool SetKernelTier(KernelTier tier) {
  const int t = static_cast<int>(tier);
  if (t < 0 || t >= kNumTiers || AvailableOps()[t] == nullptr) return false;
  g_tier.store(t, std::memory_order_release);
  return true;
}

bool KernelsVectorized() {
  return ActiveKernelTier() != KernelTier::kGeneric;
}

Tensor SparseRows::ToDense() const {
  Tensor t({rows(), dim});
  for (size_t i = 0; i < rows(); ++i) {
    float* row = t.data() + i * dim;
    for (uint32_t e = row_offsets[i]; e < row_offsets[i + 1]; ++e) {
      row[cols[e]] = vals[e];
    }
  }
  return t;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* c) {
  DS_REQUIRE(a.rank() == 2 && b.rank() == 2,
             "MatMulInto wants 2D operands, got rank %zu x rank %zu",
             a.rank(), b.rank());
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  DS_REQUIRE(k == b.dim(0),
             "MatMulInto inner dims disagree: [%zu,%zu] x [%zu,%zu]", n, k,
             b.dim(0), m);
  c->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  Ops().matmul(a.data(), b.data(), c->data(), n, k, m);
  CountKernel(GlobalKernelStats().dense_calls, n * k * m,
              (n * k + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* c) {
  DS_REQUIRE(a.rank() == 2 && b.rank() == 2,
             "MatMulTransposedBInto wants 2D operands, got rank %zu x rank "
             "%zu",
             a.rank(), b.rank());
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  DS_REQUIRE(k == b.dim(1),
             "MatMulTransposedBInto inner dims disagree: [%zu,%zu] x "
             "[%zu,%zu]^T",
             n, k, m, b.dim(1));
  c->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  Ops().matmul_tb(a.data(), b.data(), c->data(), n, k, m);
  CountKernel(GlobalKernelStats().dense_calls, n * k * m,
              (n * k + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void MatMulTransposedAAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  DS_REQUIRE(a.rank() == 2 && b.rank() == 2,
             "MatMulTransposedAAccumulate wants 2D operands, got rank %zu x "
             "rank %zu",
             a.rank(), b.rank());
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  DS_REQUIRE(n == b.dim(0),
             "MatMulTransposedAAccumulate outer dims disagree: [%zu,%zu]^T "
             "x [%zu,%zu]",
             n, k, b.dim(0), m);
  DS_REQUIRE(c->dim(0) == k && c->dim(1) == m,
             "MatMulTransposedAAccumulate accumulator is [%zu,%zu], wants "
             "[%zu,%zu]",
             c->dim(0), c->dim(1), k, m);
  DS_NO_ALLOC_BEGIN();
  Ops().matmul_ta_acc(a.data(), b.data(), c->data(), n, k, m);
  CountKernel(GlobalKernelStats().dense_calls, n * k * m,
              (n * k + n * m + k * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void LinearBiasActInto(const Tensor& x, const Tensor& weight,
                       const Tensor& bias, bool fuse_relu, Tensor* y) {
  DS_REQUIRE(x.rank() == 2 && weight.rank() == 2 && bias.rank() == 1,
             "LinearBiasActInto wants x:2D weight:2D bias:1D, got %zu/%zu/"
             "%zu",
             x.rank(), weight.rank(), bias.rank());
  const size_t n = x.dim(0), k = x.dim(1), m = weight.dim(1);
  DS_REQUIRE(k == weight.dim(0),
             "LinearBiasActInto dims disagree: x [%zu,%zu] x weight "
             "[%zu,%zu]",
             n, k, weight.dim(0), m);
  DS_REQUIRE(bias.dim(0) == m, "bias has %zu entries for %zu outputs",
             bias.dim(0), m);
  y->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  Ops().linear(x.data(), weight.data(), bias.data(), fuse_relu, y->data(), n,
               k, m);
  CountKernel(GlobalKernelStats().fused_calls, n * k * m,
              (n * k + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void LinearBiasActPackedInto(const Tensor& x, const PackedLinear& weight,
                             const Tensor& bias, bool fuse_relu, Tensor* y) {
  DS_REQUIRE(x.rank() == 2 && bias.rank() == 1,
             "LinearBiasActPackedInto wants x:2D bias:1D, got %zu/%zu",
             x.rank(), bias.rank());
  DS_REQUIRE(weight.mode != QuantMode::kFp32,
             "LinearBiasActPackedInto needs packed (int8/fp16) weights; use "
             "LinearBiasActInto for fp32");
  const size_t n = x.dim(0), k = x.dim(1), m = weight.out;
  DS_REQUIRE(k == weight.in,
             "LinearBiasActPackedInto dims disagree: x [%zu,%zu] x packed "
             "[%zu,%zu]",
             n, k, weight.in, m);
  DS_REQUIRE(bias.dim(0) == m, "bias has %zu entries for %zu outputs",
             bias.dim(0), m);
  y->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  size_t weight_bytes = 0;
  if (weight.mode == QuantMode::kInt8) {
    Ops().linear_i8(x.data(), weight.q.data(), weight.scales.data(),
                    bias.data(), fuse_relu, y->data(), n, k, m);
    weight_bytes = k * m * sizeof(int8_t) + m * sizeof(float);
  } else {
    Ops().linear_f16(x.data(), weight.half.data(), bias.data(), fuse_relu,
                     y->data(), n, k, m);
    weight_bytes = k * m * sizeof(uint16_t);
  }
  CountKernel(GlobalKernelStats().quant_calls, n * k * m,
              weight_bytes + (n * k + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void SparseLinearBiasActInto(const SparseRows& x, const Tensor& weight,
                             const Tensor& bias, bool fuse_relu, Tensor* y) {
  DS_REQUIRE(weight.rank() == 2 && bias.rank() == 1,
             "SparseLinearBiasActInto wants weight:2D bias:1D, got %zu/%zu",
             weight.rank(), bias.rank());
  const size_t n = x.rows(), k = x.dim, m = weight.dim(1);
  DS_REQUIRE(k == weight.dim(0),
             "SparseLinearBiasActInto dims disagree: x [%zu,%zu] x weight "
             "[%zu,%zu]",
             n, k, weight.dim(0), m);
  DS_REQUIRE(bias.dim(0) == m, "bias has %zu entries for %zu outputs",
             bias.dim(0), m);
  y->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  Ops().sparse_linear(x.row_offsets.data(), x.cols.data(), x.vals.data(), n,
                      weight.data(), bias.data(), fuse_relu, y->data(), m);
  CountKernel(GlobalKernelStats().sparse_calls, x.nonzeros() * m,
              (x.nonzeros() * 2 * sizeof(uint32_t)) +
                  (x.nonzeros() + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void SparseLinearBiasActPackedInto(const SparseRows& x,
                                   const PackedLinear& weight,
                                   const Tensor& bias, bool fuse_relu,
                                   Tensor* y) {
  DS_REQUIRE(bias.rank() == 1,
             "SparseLinearBiasActPackedInto wants bias:1D, got %zu",
             bias.rank());
  DS_REQUIRE(weight.mode != QuantMode::kFp32,
             "SparseLinearBiasActPackedInto needs packed (int8/fp16) "
             "weights; use SparseLinearBiasActInto for fp32");
  const size_t n = x.rows(), k = x.dim, m = weight.out;
  DS_REQUIRE(k == weight.in,
             "SparseLinearBiasActPackedInto dims disagree: x [%zu,%zu] x "
             "packed [%zu,%zu]",
             n, k, weight.in, m);
  DS_REQUIRE(bias.dim(0) == m, "bias has %zu entries for %zu outputs",
             bias.dim(0), m);
  y->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  size_t weight_bytes = 0;
  if (weight.mode == QuantMode::kInt8) {
    Ops().sparse_linear_i8(x.row_offsets.data(), x.cols.data(),
                           x.vals.data(), n, weight.q.data(),
                           weight.scales.data(), bias.data(), fuse_relu,
                           y->data(), m);
    weight_bytes = k * m * sizeof(int8_t) + m * sizeof(float);
  } else {
    Ops().sparse_linear_f16(x.row_offsets.data(), x.cols.data(),
                            x.vals.data(), n, weight.half.data(),
                            bias.data(), fuse_relu, y->data(), m);
    weight_bytes = k * m * sizeof(uint16_t);
  }
  CountKernel(GlobalKernelStats().quant_calls, x.nonzeros() * m,
              weight_bytes + (x.nonzeros() * 2 * sizeof(uint32_t)) +
                  (x.nonzeros() + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

}  // namespace ds::nn

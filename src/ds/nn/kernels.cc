#include "ds/nn/kernels.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "ds/util/contract.h"

namespace ds::nn {

KernelStats& GlobalKernelStats() {
  static KernelStats* stats = new KernelStats();
  return *stats;
}

bool KernelsVectorized() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

namespace {

void CountKernel(std::atomic<uint64_t>& which, uint64_t macs, uint64_t bytes) {
  KernelStats& s = GlobalKernelStats();
  which.fetch_add(1, std::memory_order_relaxed);
  s.flops.fetch_add(2 * macs, std::memory_order_relaxed);
  s.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

// crow[j] += av * brow[j] for j in [0, m). The building block of every
// accumulation kernel below. Sequential per-element accumulation (one add
// per k step) keeps results bit-for-bit equal to the scalar reference; the
// AVX2 path widens j, it does not reorder k.
inline void AxpyRow(float av, const float* brow, float* crow, size_t m) {
  size_t j = 0;
#if defined(__AVX2__)
  const __m256 av8 = _mm256_set1_ps(av);
  for (; j + 16 <= m; j += 16) {
    __m256 c0 = _mm256_loadu_ps(crow + j);
    __m256 c1 = _mm256_loadu_ps(crow + j + 8);
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(av8, _mm256_loadu_ps(brow + j)));
    c1 = _mm256_add_ps(c1, _mm256_mul_ps(av8, _mm256_loadu_ps(brow + j + 8)));
    _mm256_storeu_ps(crow + j, c0);
    _mm256_storeu_ps(crow + j + 8, c1);
  }
  for (; j + 8 <= m; j += 8) {
    __m256 c0 = _mm256_loadu_ps(crow + j);
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(av8, _mm256_loadu_ps(brow + j)));
    _mm256_storeu_ps(crow + j, c0);
  }
#else
  // 4-wide unroll; independent elements, so the compiler can vectorize.
  for (; j + 4 <= m; j += 4) {
    crow[j] += av * brow[j];
    crow[j + 1] += av * brow[j + 1];
    crow[j + 2] += av * brow[j + 2];
    crow[j + 3] += av * brow[j + 3];
  }
#endif
  for (; j < m; ++j) crow[j] += av * brow[j];
}

// crow[j] = (crow[j] + a1 * b1[j]) + a2 * b2[j] — exactly the float
// sequence of two AxpyRow calls, but with both weight-row loads in flight
// at once. The k loops pair consecutive nonzeros through this to hide
// load latency on the accumulation-heavy sparse/one-hot first layers.
inline void AxpyRow2(float a1, const float* b1, float a2, const float* b2,
                     float* crow, size_t m) {
  size_t j = 0;
#if defined(__AVX2__)
  const __m256 av1 = _mm256_set1_ps(a1);
  const __m256 av2 = _mm256_set1_ps(a2);
  for (; j + 8 <= m; j += 8) {
    __m256 c = _mm256_loadu_ps(crow + j);
    c = _mm256_add_ps(c, _mm256_mul_ps(av1, _mm256_loadu_ps(b1 + j)));
    c = _mm256_add_ps(c, _mm256_mul_ps(av2, _mm256_loadu_ps(b2 + j)));
    _mm256_storeu_ps(crow + j, c);
  }
#endif
  for (; j < m; ++j) crow[j] = (crow[j] + a1 * b1[j]) + a2 * b2[j];
}

// crow[j] += sum_k arow[k] * b[k][j], skipping zero entries of arow and
// pairing consecutive nonzeros through AxpyRow2. Bit-exact with the plain
// sequential zero-skip loop (each pair preserves per-element add order).
inline void AccumulateRow(const float* arow, size_t k, const float* bd,
                          size_t m, float* crow) {
  size_t kk = 0;
  for (;;) {
    while (kk < k && arow[kk] == 0.0f) ++kk;
    if (kk >= k) break;
    const size_t k1 = kk++;
    while (kk < k && arow[kk] == 0.0f) ++kk;
    if (kk >= k) {
      AxpyRow(arow[k1], bd + k1 * m, crow, m);
      break;
    }
    const size_t k2 = kk++;
    AxpyRow2(arow[k1], bd + k1 * m, arow[k2], bd + k2 * m, crow, m);
  }
}

// crow[j] = bias[j] for j in [0, m).
inline void CopyRow(const float* src, float* dst, size_t m) {
  size_t j = 0;
#if defined(__AVX2__)
  for (; j + 8 <= m; j += 8) {
    _mm256_storeu_ps(dst + j, _mm256_loadu_ps(src + j));
  }
#endif
  for (; j < m; ++j) dst[j] = src[j];
}

inline void ZeroRow(float* dst, size_t m) {
  size_t j = 0;
#if defined(__AVX2__)
  const __m256 zero = _mm256_setzero_ps();
  for (; j + 8 <= m; j += 8) _mm256_storeu_ps(dst + j, zero);
#endif
  for (; j < m; ++j) dst[j] = 0.0f;
}

// crow[j] += bias[j], then optionally relu, in one pass.
inline void BiasActRow(const float* bias, bool fuse_relu, float* crow,
                       size_t m) {
  size_t j = 0;
#if defined(__AVX2__)
  const __m256 zero = _mm256_setzero_ps();
  for (; j + 8 <= m; j += 8) {
    __m256 c = _mm256_add_ps(_mm256_loadu_ps(crow + j),
                             _mm256_loadu_ps(bias + j));
    if (fuse_relu) c = _mm256_max_ps(c, zero);
    _mm256_storeu_ps(crow + j, c);
  }
#endif
  for (; j < m; ++j) {
    float v = crow[j] + bias[j];
    crow[j] = fuse_relu && v < 0.0f ? 0.0f : v;
  }
}

}  // namespace

Tensor SparseRows::ToDense() const {
  Tensor t({rows(), dim});
  for (size_t i = 0; i < rows(); ++i) {
    float* row = t.data() + i * dim;
    for (uint32_t e = row_offsets[i]; e < row_offsets[i + 1]; ++e) {
      row[cols[e]] = vals[e];
    }
  }
  return t;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* c) {
  DS_REQUIRE(a.rank() == 2 && b.rank() == 2,
             "MatMulInto wants 2D operands, got rank %zu x rank %zu",
             a.rank(), b.rank());
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  DS_REQUIRE(k == b.dim(0),
             "MatMulInto inner dims disagree: [%zu,%zu] x [%zu,%zu]", n, k,
             b.dim(0), m);
  c->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  for (size_t i = 0; i < n; ++i) {
    float* crow = cd + i * m;
    ZeroRow(crow, m);
    // Zero entries are skipped (one-hot/bitmap inputs are mostly zero).
    AccumulateRow(ad + i * k, k, bd, m, crow);
  }
  CountKernel(GlobalKernelStats().dense_calls, n * k * m,
              (n * k + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* c) {
  DS_REQUIRE(a.rank() == 2 && b.rank() == 2,
             "MatMulTransposedBInto wants 2D operands, got rank %zu x rank "
             "%zu",
             a.rank(), b.rank());
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  DS_REQUIRE(k == b.dim(1),
             "MatMulTransposedBInto inner dims disagree: [%zu,%zu] x "
             "[%zu,%zu]^T",
             n, k, m, b.dim(1));
  c->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float* brow = bd + j * k;
      size_t kk = 0;
      float acc = 0.0f;
#if defined(__AVX2__)
      if (k >= 8) {
        __m256 acc8 = _mm256_setzero_ps();
        for (; kk + 8 <= k; kk += 8) {
          acc8 = _mm256_add_ps(acc8,
                               _mm256_mul_ps(_mm256_loadu_ps(arow + kk),
                                             _mm256_loadu_ps(brow + kk)));
        }
        // Horizontal sum (reassociates the reduction; the backward pass
        // tolerates the rounding difference).
        __m128 lo = _mm256_castps256_ps128(acc8);
        __m128 hi = _mm256_extractf128_ps(acc8, 1);
        __m128 s = _mm_add_ps(lo, hi);
        s = _mm_hadd_ps(s, s);
        s = _mm_hadd_ps(s, s);
        acc = _mm_cvtss_f32(s);
      }
#endif
      for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  CountKernel(GlobalKernelStats().dense_calls, n * k * m,
              (n * k + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void MatMulTransposedAAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  DS_REQUIRE(a.rank() == 2 && b.rank() == 2,
             "MatMulTransposedAAccumulate wants 2D operands, got rank %zu x "
             "rank %zu",
             a.rank(), b.rank());
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  DS_REQUIRE(n == b.dim(0),
             "MatMulTransposedAAccumulate outer dims disagree: [%zu,%zu]^T "
             "x [%zu,%zu]",
             n, k, b.dim(0), m);
  DS_REQUIRE(c->dim(0) == k && c->dim(1) == m,
             "MatMulTransposedAAccumulate accumulator is [%zu,%zu], wants "
             "[%zu,%zu]",
             c->dim(0), c->dim(1), k, m);
  DS_NO_ALLOC_BEGIN();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = ad + i * k;
    const float* brow = bd + i * m;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      AxpyRow(av, brow, cd + kk * m, m);
    }
  }
  CountKernel(GlobalKernelStats().dense_calls, n * k * m,
              (n * k + n * m + k * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void LinearBiasActInto(const Tensor& x, const Tensor& weight,
                       const Tensor& bias, bool fuse_relu, Tensor* y) {
  DS_REQUIRE(x.rank() == 2 && weight.rank() == 2 && bias.rank() == 1,
             "LinearBiasActInto wants x:2D weight:2D bias:1D, got %zu/%zu/"
             "%zu",
             x.rank(), weight.rank(), bias.rank());
  const size_t n = x.dim(0), k = x.dim(1), m = weight.dim(1);
  DS_REQUIRE(k == weight.dim(0),
             "LinearBiasActInto dims disagree: x [%zu,%zu] x weight "
             "[%zu,%zu]",
             n, k, weight.dim(0), m);
  DS_REQUIRE(bias.dim(0) == m, "bias has %zu entries for %zu outputs",
             bias.dim(0), m);
  y->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  const float* xd = x.data();
  const float* wd = weight.data();
  const float* bd = bias.data();
  float* yd = y->data();
  for (size_t i = 0; i < n; ++i) {
    float* yrow = yd + i * m;
    ZeroRow(yrow, m);
    AccumulateRow(xd + i * k, k, wd, m, yrow);
    BiasActRow(bd, fuse_relu, yrow, m);
  }
  CountKernel(GlobalKernelStats().fused_calls, n * k * m,
              (n * k + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

void SparseLinearBiasActInto(const SparseRows& x, const Tensor& weight,
                             const Tensor& bias, bool fuse_relu, Tensor* y) {
  DS_REQUIRE(weight.rank() == 2 && bias.rank() == 1,
             "SparseLinearBiasActInto wants weight:2D bias:1D, got %zu/%zu",
             weight.rank(), bias.rank());
  const size_t n = x.rows(), k = x.dim, m = weight.dim(1);
  DS_REQUIRE(k == weight.dim(0),
             "SparseLinearBiasActInto dims disagree: x [%zu,%zu] x weight "
             "[%zu,%zu]",
             n, k, weight.dim(0), m);
  DS_REQUIRE(bias.dim(0) == m, "bias has %zu entries for %zu outputs",
             bias.dim(0), m);
  y->ResizeInPlace({n, m});
  DS_NO_ALLOC_BEGIN();
  const float* wd = weight.data();
  const float* bd = bias.data();
  float* yd = y->data();
  for (size_t i = 0; i < n; ++i) {
    float* yrow = yd + i * m;
    ZeroRow(yrow, m);
    uint32_t e = x.row_offsets[i];
    const uint32_t end = x.row_offsets[i + 1];
    for (; e + 2 <= end; e += 2) {
      AxpyRow2(x.vals[e], wd + x.cols[e] * m, x.vals[e + 1],
               wd + x.cols[e + 1] * m, yrow, m);
    }
    if (e < end) AxpyRow(x.vals[e], wd + x.cols[e] * m, yrow, m);
    BiasActRow(bd, fuse_relu, yrow, m);
  }
  CountKernel(GlobalKernelStats().sparse_calls, x.nonzeros() * m,
              (x.nonzeros() * 2 * sizeof(uint32_t)) +
                  (x.nonzeros() + k * m + n * m) * sizeof(float));
  DS_NO_ALLOC_END();
}

}  // namespace ds::nn

// Optimizers: SGD (with momentum) and Adam. The paper trains MSCN with
// Adam via PyTorch; SGD is kept for ablations.

#ifndef DS_NN_OPTIMIZER_H_
#define DS_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "ds/nn/layers.h"

namespace ds::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all gradient accumulators (call after Step).
  void ZeroGrad() {
    for (Parameter* p : params_) p->grad.Zero();
  }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace ds::nn

#endif  // DS_NN_OPTIMIZER_H_

#include "ds/nn/layers.h"

#include <cmath>
#include <utility>

namespace ds::nn {

// ---- Linear --------------------------------------------------------------------

Linear::Linear(std::string name, size_t in, size_t out)
    : weight_(name + ".weight", {in, out}), bias_(name + ".bias", {out}) {}

void Linear::Initialize(util::Pcg32* rng) {
  const size_t in = weight_.value.dim(0);
  const float bound = std::sqrt(6.0f / static_cast<float>(in));
  for (float& w : weight_.value.vec()) {
    w = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
  bias_.value.Zero();
}

Tensor Linear::Forward(const Tensor& x) {
  DS_CHECK_EQ(x.rank(), 2u);
  cached_x_ = x;
  Tensor y;
  LinearBiasActInto(x, weight_.value, bias_.value, /*fuse_relu=*/false, &y);
  return y;
}

Tensor Linear::Infer(const Tensor& x) const {
  DS_CHECK_EQ(x.rank(), 2u);
  // Via InferInto so the single-query and batched paths read the same
  // (possibly packed) weights — estimates must not depend on which API
  // served them.
  Tensor y;
  InferInto(x, /*fuse_relu=*/false, &y);
  return y;
}

void Linear::InferInto(const Tensor& x, bool fuse_relu, Tensor* y) const {
  if (packed_) {
    LinearBiasActPackedInto(x, *packed_, bias_.value, fuse_relu, y);
  } else {
    LinearBiasActInto(x, weight_.value, bias_.value, fuse_relu, y);
  }
}

void Linear::InferSparseInto(const SparseRows& x, bool fuse_relu,
                             Tensor* y) const {
  if (packed_) {
    SparseLinearBiasActPackedInto(x, *packed_, bias_.value, fuse_relu, y);
  } else {
    SparseLinearBiasActInto(x, weight_.value, bias_.value, fuse_relu, y);
  }
}

void Linear::Pack(QuantMode mode) {
  if (mode == QuantMode::kFp32) {
    packed_.reset();
    return;
  }
  packed_ = std::make_shared<const PackedLinear>(
      PackWeights(weight_.value, mode));
}

void Linear::WritePacked(util::BinaryWriter* writer) const {
  if (packed_ != nullptr) {
    packed_->Write(writer);
    return;
  }
  PackedLinear unpacked;
  unpacked.in = in_features();
  unpacked.out = out_features();
  unpacked.Write(writer);
}

Status Linear::ReadPacked(util::BinaryReader* reader) {
  Result<PackedLinear> read = PackedLinear::Read(reader);
  if (!read.ok()) return read.status();
  PackedLinear p = std::move(read).value();
  if (p.mode == QuantMode::kFp32) {
    packed_.reset();
    return Status::OK();
  }
  if (p.in != in_features() || p.out != out_features()) {
    return Status::ParseError(
        "packed weight shape [" + std::to_string(p.in) + "," +
        std::to_string(p.out) + "] disagrees with layer [" +
        std::to_string(in_features()) + "," + std::to_string(out_features()) +
        "]");
  }
  packed_ = std::make_shared<const PackedLinear>(std::move(p));
  return Status::OK();
}

Tensor Linear::Backward(const Tensor& dy) {
  DS_CHECK(!cached_x_.empty());
  // dW += x^T dy ; db += column sums of dy ; dx = dy W^T.
  MatMulTransposedAAccumulate(cached_x_, dy, &weight_.grad);
  SumRowsInto(dy, &bias_.grad);
  Tensor dx;
  MatMulTransposedBInto(dy, weight_.value, &dx);
  return dx;
}

// ---- Activations ------------------------------------------------------------------

Tensor ReLU::Forward(Tensor x) {
  // In place; the output doubles as the backward cache (y == 0 iff x <= 0,
  // so the gradient mask is recoverable from y alone).
  for (float& v : x.vec()) v = v > 0.0f ? v : 0.0f;
  cached_y_ = x;
  return x;
}

Tensor ReLU::Backward(const Tensor& dy) {
  DS_CHECK(dy.SameShape(cached_y_));
  Tensor dx = dy;
  const float* y = cached_y_.data();
  float* d = dx.data();
  for (size_t i = 0; i < dx.size(); ++i) {
    if (y[i] == 0.0f) d[i] = 0.0f;
  }
  return dx;
}

void ReLU::ApplyInPlace(Tensor* x) {
  for (float& v : x->vec()) v = v > 0.0f ? v : 0.0f;
}

Tensor Sigmoid::Forward(Tensor x) {
  for (float& v : x.vec()) v = 1.0f / (1.0f + std::exp(-v));
  cached_y_ = x;
  return x;
}

Tensor Sigmoid::Backward(const Tensor& dy) {
  DS_CHECK(dy.SameShape(cached_y_));
  Tensor dx = dy;
  const float* y = cached_y_.data();
  float* d = dx.data();
  for (size_t i = 0; i < dx.size(); ++i) d[i] *= y[i] * (1.0f - y[i]);
  return dx;
}

void Sigmoid::ApplyInPlace(Tensor* x) {
  for (float& v : x->vec()) v = 1.0f / (1.0f + std::exp(-v));
}

// ---- Mlp ---------------------------------------------------------------------------

Mlp::Mlp(std::string name, const std::vector<size_t>& sizes,
         bool final_activation)
    : final_activation_(final_activation) {
  DS_CHECK_GE(sizes.size(), 2u);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(name + ".fc" + std::to_string(i), sizes[i],
                         sizes[i + 1]);
  }
  relus_.resize(final_activation_ ? layers_.size() : layers_.size() - 1);
}

void Mlp::Initialize(util::Pcg32* rng) {
  for (auto& l : layers_) l.Initialize(rng);
}

Tensor Mlp::Forward(const Tensor& x) {
  // Feed `x` straight into the first layer (it caches its own input copy);
  // the old `Tensor h = x;` head copy was pure overhead.
  Tensor h = layers_[0].Forward(x);
  if (!relus_.empty()) h = relus_[0].Forward(std::move(h));
  for (size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i < relus_.size()) h = relus_[i].Forward(std::move(h));
  }
  return h;
}

Tensor Mlp::Infer(const Tensor& x) const {
  Tensor h = layers_[0].Infer(x);
  if (!relus_.empty()) ReLU::ApplyInPlace(&h);
  for (size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i].Infer(h);
    if (i < relus_.size()) ReLU::ApplyInPlace(&h);
  }
  return h;
}

Tensor* Mlp::InferInto(const Tensor& x, Workspace* ws) const {
  // Two ping-pong slots: layer i reads one and writes the other. The fused
  // kernel handles the bias add and (when a ReLU follows) the activation.
  Tensor* a = ws->Acquire();
  Tensor* b = ws->Acquire();
  const Tensor* in = &x;
  Tensor* out = a;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].InferInto(*in, /*fuse_relu=*/i < relus_.size(), out);
    in = out;
    out = (out == a) ? b : a;
  }
  return const_cast<Tensor*>(in);
}

Tensor* Mlp::InferSparseInto(const SparseRows& x, Workspace* ws) const {
  Tensor* a = ws->Acquire();
  Tensor* b = ws->Acquire();
  layers_[0].InferSparseInto(x, /*fuse_relu=*/!relus_.empty(), a);
  Tensor* in = a;
  Tensor* out = b;
  for (size_t i = 1; i < layers_.size(); ++i) {
    layers_[i].InferInto(*in, /*fuse_relu=*/i < relus_.size(), out);
    std::swap(in, out);
  }
  return in;
}

Tensor Mlp::Backward(const Tensor& dy) {
  Tensor d = dy;
  for (size_t i = layers_.size(); i-- > 0;) {
    if (i < relus_.size()) d = relus_[i].Backward(d);
    d = layers_[i].Backward(d);
  }
  return d;
}

void Mlp::Pack(QuantMode mode) {
  for (auto& l : layers_) l.Pack(mode);
}

void Mlp::WritePacked(util::BinaryWriter* writer) const {
  writer->WriteU64(layers_.size());
  for (const auto& l : layers_) l.WritePacked(writer);
}

Status Mlp::ReadPacked(util::BinaryReader* reader) {
  uint64_t n = 0;
  DS_RETURN_NOT_OK(reader->ReadU64(&n));
  if (n != layers_.size()) {
    return Status::ParseError("packed layer count mismatch: file has " +
                              std::to_string(n) + ", model has " +
                              std::to_string(layers_.size()));
  }
  for (auto& l : layers_) DS_RETURN_NOT_OK(l.ReadPacked(reader));
  return Status::OK();
}

std::vector<Parameter*> Mlp::Parameters() {
  std::vector<Parameter*> out;
  for (auto& l : layers_) {
    for (Parameter* p : l.Parameters()) out.push_back(p);
  }
  return out;
}

// ---- MaskedMean -----------------------------------------------------------------------

Tensor MaskedMean::Forward(const Tensor& flat, const Tensor& mask) {
  DS_CHECK_EQ(flat.rank(), 2u);
  DS_CHECK_EQ(mask.rank(), 2u);
  const size_t b = mask.dim(0), s = mask.dim(1), h = flat.dim(1);
  DS_CHECK_EQ(flat.dim(0), b * s);
  cached_mask_ = mask;
  cached_h_ = h;
  cached_counts_.assign(b, 0.0f);
  Tensor out({b, h});
  for (size_t i = 0; i < b; ++i) {
    float count = 0.0f;
    float* orow = out.data() + i * h;
    for (size_t j = 0; j < s; ++j) {
      const float m = mask.at(i, j);
      if (m == 0.0f) continue;
      count += m;
      const float* frow = flat.data() + (i * s + j) * h;
      for (size_t k = 0; k < h; ++k) orow[k] += m * frow[k];
    }
    cached_counts_[i] = count;
    if (count > 0.0f) {
      const float inv = 1.0f / count;
      for (size_t k = 0; k < h; ++k) orow[k] *= inv;
    }
  }
  return out;
}

Tensor MaskedMean::Pool(const Tensor& flat, const Tensor& mask) {
  DS_CHECK_EQ(flat.rank(), 2u);
  DS_CHECK_EQ(mask.rank(), 2u);
  const size_t b = mask.dim(0), s = mask.dim(1), h = flat.dim(1);
  DS_CHECK_EQ(flat.dim(0), b * s);
  Tensor out({b, h});
  for (size_t i = 0; i < b; ++i) {
    float count = 0.0f;
    float* orow = out.data() + i * h;
    for (size_t j = 0; j < s; ++j) {
      const float m = mask.at(i, j);
      if (m == 0.0f) continue;
      count += m;
      const float* frow = flat.data() + (i * s + j) * h;
      for (size_t k = 0; k < h; ++k) orow[k] += m * frow[k];
    }
    if (count > 0.0f) {
      const float inv = 1.0f / count;
      for (size_t k = 0; k < h; ++k) orow[k] *= inv;
    }
  }
  return out;
}

void MaskedMean::PoolInto(const Tensor& flat, const Tensor& mask,
                          Tensor* out) {
  DS_CHECK_EQ(flat.rank(), 2u);
  DS_CHECK_EQ(mask.rank(), 2u);
  const size_t b = mask.dim(0), s = mask.dim(1), h = flat.dim(1);
  DS_CHECK_EQ(flat.dim(0), b * s);
  out->ResizeInPlace({b, h});
  for (size_t i = 0; i < b; ++i) {
    float count = 0.0f;
    float* orow = out->data() + i * h;
    for (size_t k = 0; k < h; ++k) orow[k] = 0.0f;
    for (size_t j = 0; j < s; ++j) {
      const float m = mask.at(i, j);
      if (m == 0.0f) continue;
      count += m;
      const float* frow = flat.data() + (i * s + j) * h;
      for (size_t k = 0; k < h; ++k) orow[k] += m * frow[k];
    }
    if (count > 0.0f) {
      const float inv = 1.0f / count;
      for (size_t k = 0; k < h; ++k) orow[k] *= inv;
    }
  }
}

Tensor MaskedMean::Backward(const Tensor& dy) {
  const size_t b = cached_mask_.dim(0), s = cached_mask_.dim(1);
  const size_t h = cached_h_;
  DS_CHECK_EQ(dy.dim(0), b);
  DS_CHECK_EQ(dy.dim(1), h);
  Tensor dflat({b * s, h});
  for (size_t i = 0; i < b; ++i) {
    const float count = cached_counts_[i];
    if (count == 0.0f) continue;
    const float inv = 1.0f / count;
    const float* drow = dy.data() + i * h;
    for (size_t j = 0; j < s; ++j) {
      const float m = cached_mask_.at(i, j);
      if (m == 0.0f) continue;
      float* frow = dflat.data() + (i * s + j) * h;
      const float scale = m * inv;
      for (size_t k = 0; k < h; ++k) frow[k] = scale * drow[k];
    }
  }
  return dflat;
}

// ---- Persistence -------------------------------------------------------------------------

void WriteParameters(const std::vector<Parameter*>& params,
                     util::BinaryWriter* writer) {
  writer->WriteU64(params.size());
  for (const Parameter* p : params) {
    writer->WriteString(p->name);
    std::vector<uint64_t> shape(p->value.shape().begin(),
                                p->value.shape().end());
    writer->WritePodVector(shape);
    writer->WritePodSpan(p->value.data(), p->value.size());
  }
}

Status ReadParameters(util::BinaryReader* reader,
                      const std::vector<Parameter*>& params) {
  uint64_t n = 0;
  DS_RETURN_NOT_OK(reader->ReadU64(&n));
  if (n != params.size()) {
    return Status::ParseError("parameter count mismatch: file has " +
                              std::to_string(n) + ", model has " +
                              std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    std::string name;
    DS_RETURN_NOT_OK(reader->ReadString(&name));
    if (name != p->name) {
      return Status::ParseError("parameter name mismatch: file has '" + name +
                                "', model expects '" + p->name + "'");
    }
    std::vector<uint64_t> shape;
    DS_RETURN_NOT_OK(reader->ReadPodVector(&shape));
    std::vector<size_t> want(p->value.shape().begin(),
                             p->value.shape().end());
    if (std::vector<size_t>(shape.begin(), shape.end()) != want) {
      return Status::ParseError("parameter shape mismatch for '" + name + "'");
    }
    Status read = reader->ReadPodSpan(p->value.data(), p->value.size());
    if (!read.ok()) {
      return Status::ParseError("parameter data mismatch for '" + name +
                                "': " + read.message());
    }
  }
  return Status::OK();
}

}  // namespace ds::nn

// Zero-allocation, runtime-dispatched kernels for the NN hot paths.
//
// The functional ops in tensor.h allocate their result and keep a scalar
// triple loop; they remain the reference implementations. The kernels here
// are the serving/training hot path:
//
//   * "-Into" variants write into caller-provided, pre-sized tensors, so a
//     steady-state inference batch touches no allocator at all (pair them
//     with nn::Workspace).
//   * Every kernel body is compiled several times into *tiers* — generic
//     (portable, auto-vectorizable), AVX2, AVX2+FMA, and AVX-512 — in
//     separate translation units with per-file target flags (see
//     src/CMakeLists.txt). A dispatch table picks the tier at first use
//     from runtime CPU detection (ds/util/cpuid.h), so one binary runs
//     correctly on baseline x86-64 and fast on whatever it lands on. The
//     DS_KERNEL_TIER environment variable (generic|avx2|fma|avx512|native)
//     overrides the choice; SetKernelTier() does the same programmatically
//     for tests and benches.
//   * Numerics per tier: generic and AVX2 use mul+add in the same k-order,
//     so they are bit-for-bit identical to the tensor.h references (and to
//     each other) — which is why AVX2 is the *default* ceiling: estimates
//     stay reproducible across machines. The FMA and AVX-512 tiers contract
//     to fused multiply-add (rounding once instead of twice); they are
//     opt-in via DS_KERNEL_TIER=fma|avx512|native and parity-gated to a
//     tolerance by bench_nn_kernels check=1.
//   * LinearBiasActInto fuses x*W + b (+ ReLU) into one pass; the Packed
//     variants read int8/fp16 packed weights (ds/nn/quant.h), applying
//     per-output-channel scales in the same fused tail.
//   * SparseRows is a CSR representation of the MSCN's one-hot/bitmap
//     feature rows (overwhelmingly zero); SparseLinearBiasActInto multiplies
//     it against a dense weight matrix touching only the nonzeros.
//
// Thread-safety: all kernels are pure functions of their arguments; distinct
// output tensors may be computed concurrently. KernelStats counters are
// relaxed atomics, updated once per kernel call. SetKernelTier is an atomic
// pointer swap intended for startup/test code, not mid-batch flips.

#ifndef DS_NN_KERNELS_H_
#define DS_NN_KERNELS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ds/nn/quant.h"
#include "ds/nn/tensor.h"
#include "ds/util/contract.h"

namespace ds::nn {

// ---- Kernel instrumentation ---------------------------------------------------

/// Process-wide kernel counters (relaxed atomics; one update per kernel
/// call, so the instrumentation cost is a few nanoseconds per layer per
/// batch). The serving layer and benchmarks export these as obs gauges.
struct KernelStats {
  std::atomic<uint64_t> dense_calls{0};   // MatMulInto and transposed forms
  std::atomic<uint64_t> fused_calls{0};   // LinearBiasActInto
  std::atomic<uint64_t> sparse_calls{0};  // SparseLinearBiasActInto
  std::atomic<uint64_t> quant_calls{0};   // packed int8/fp16 fused kernels
  std::atomic<uint64_t> flops{0};         // 2 * multiply-accumulates issued
  std::atomic<uint64_t> bytes{0};         // operand + result bytes touched
};

KernelStats& GlobalKernelStats();

// ---- Runtime dispatch ----------------------------------------------------------

/// Kernel tiers, ordered: a higher tier never lacks an instruction a lower
/// one uses. kGeneric and kAvx2 are bit-identical; kAvx2Fma and kAvx512
/// contract to FMA (tolerance-bounded vs the others).
enum class KernelTier : int {
  kGeneric = 0,
  kAvx2 = 1,
  kAvx2Fma = 2,
  kAvx512 = 3,
};

const char* KernelTierName(KernelTier tier);

/// Tiers usable in this process: compiled into the binary AND supported by
/// the running CPU/OS. Always contains kGeneric; sorted ascending.
std::vector<KernelTier> AvailableKernelTiers();

/// The tier the dispatch table currently routes through. First call
/// resolves the default: the best *bit-stable* tier (AVX2 when available),
/// unless DS_KERNEL_TIER requests otherwise ("native" = fastest available
/// including FMA/AVX-512; unknown or unavailable values fall back and warn
/// on stderr once).
KernelTier ActiveKernelTier();

/// Forces the active tier. Returns false (and changes nothing) when the
/// tier is not available in this process. Tests and benches only.
bool SetKernelTier(KernelTier tier);

/// True when the active tier uses SIMD intrinsics (i.e. not kGeneric).
bool KernelsVectorized();

// ---- Dense kernels -------------------------------------------------------------

/// C = A x B for 2D tensors [n,k] x [k,m]; `c` is resized in place to [n,m].
/// Bit-for-bit identical to tensor.h MatMul on generic/AVX2 tiers (same
/// k-order accumulation, same skip of zero A entries).
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* c);

/// C = A x B^T: [n,k] x [m,k] -> [n,m] (backward pass: dx = dy W^T). Uses
/// multi-accumulator dot products, so results may differ from the reference
/// by rounding (training-path tolerance).
void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* c);

/// C += A^T x B: [n,k] x [n,m] -> [k,m], accumulating into `c` (weight
/// gradient: dW += x^T dy, without the temporary + Axpy of the reference).
void MatMulTransposedAAccumulate(const Tensor& a, const Tensor& b, Tensor* c);

/// Fused y = x*W + b, optionally followed by ReLU; `y` is resized in place
/// to [n, out]. Accumulation order matches Linear::Forward (MatMul then
/// AddBiasRows), so outputs are bit-for-bit identical to the unfused path
/// on generic/AVX2 tiers.
void LinearBiasActInto(const Tensor& x, const Tensor& weight,
                       const Tensor& bias, bool fuse_relu, Tensor* y);

/// Fused y = x*W + b (+ ReLU) with W in packed int8/fp16 form (see
/// ds/nn/quant.h). int8 accumulates x·q in fp32 and applies the
/// per-output-channel scale once in the bias pass: y_j = acc_j * s_j + b_j.
void LinearBiasActPackedInto(const Tensor& x, const PackedLinear& weight,
                             const Tensor& bias, bool fuse_relu, Tensor* y);

// ---- Sparse featurized inputs --------------------------------------------------

/// CSR-style rows of an implicit dense [rows, dim] matrix. The MSCN feature
/// rows (table one-hot + sample bitmap, join one-hot, predicate one-hot +
/// literal) are overwhelmingly zero; storing only the nonzeros makes the
/// first layer of each set-MLP proportional to the nonzero count. Column
/// indices within a row must be strictly increasing — the same order the
/// dense reference walks k — which keeps the sparse product bit-for-bit
/// equal to the dense one. Clear() keeps capacity, so a reused SparseRows
/// stops allocating once it has seen the largest batch.
struct SparseRows {
  size_t dim = 0;                      // dense row width
  std::vector<uint32_t> row_offsets;   // size rows()+1; row_offsets[0] == 0
  std::vector<uint32_t> cols;
  std::vector<float> vals;

  size_t rows() const {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
  size_t nonzeros() const { return cols.size(); }

  void Clear(size_t new_dim) {
    dim = new_dim;
    row_offsets.clear();
    row_offsets.push_back(0);
    cols.clear();
    vals.clear();
  }

  /// Appends one entry to the row currently being built. Columns must
  /// arrive strictly increasing within a row (the CSR invariant the
  /// bit-for-bit sparse/dense equivalence depends on); the DS_DCHECK
  /// enforces it in Debug/sanitizer builds at zero Release cost.
  void Push(uint32_t col, float val) {
    DS_DCHECK(col < dim, "CSR column %u out of range (dim %zu)", col, dim);
    DS_DCHECK(cols.size() == static_cast<size_t>(row_offsets.back()) ||
                  cols.back() < col,
              "CSR columns must be strictly increasing within a row "
              "(prev %u, got %u)",
              cols.empty() ? 0 : cols.back(), col);
    cols.push_back(col);
    vals.push_back(val);
  }

  /// Finishes the current row (call once per row, including empty padding
  /// rows).
  void EndRow() { row_offsets.push_back(static_cast<uint32_t>(cols.size())); }

  /// Appends a full row copied from `src` (used when packing per-query rows
  /// into a padded per-batch matrix). Bulk-copies the row's column/value
  /// spans — bitmap-featurized rows carry hundreds of entries, so this is
  /// on the batched-serving critical path.
  void AppendRowFrom(const SparseRows& src, size_t row) {
    const uint32_t b = src.row_offsets[row], e = src.row_offsets[row + 1];
    cols.insert(cols.end(), src.cols.begin() + b, src.cols.begin() + e);
    vals.insert(vals.end(), src.vals.begin() + b, src.vals.begin() + e);
    EndRow();
  }

  /// Materializes the dense [rows, dim] matrix (tests / reference path).
  Tensor ToDense() const;
};

/// Fused y = sparse_x * W + b (+ ReLU) with x in CSR form; `y` is resized in
/// place to [x.rows(), out]. Bit-for-bit equal to LinearBiasActInto on
/// ToDense() input because zero entries contribute nothing in either path.
void SparseLinearBiasActInto(const SparseRows& x, const Tensor& weight,
                             const Tensor& bias, bool fuse_relu, Tensor* y);

/// Sparse x packed int8/fp16 weights — the quantized serving hot path for
/// the set-MLP first layers.
void SparseLinearBiasActPackedInto(const SparseRows& x,
                                   const PackedLinear& weight,
                                   const Tensor& bias, bool fuse_relu,
                                   Tensor* y);

}  // namespace ds::nn

#endif  // DS_NN_KERNELS_H_

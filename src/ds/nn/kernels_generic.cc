// Generic kernel tier: portable scalar C++ compiled with the project's
// baseline flags only (no -m options), so it runs on any x86-64 (or
// non-x86) machine. Bit-for-bit identical to the AVX2 tier on the fp32 and
// fp16 paths, and the reference everything else is parity-checked against.

#include "ds/nn/kernels_dispatch.h"

#define DS_TIER_NS generic
#define DS_TIER_SIMD 0
#define DS_TIER_FMA 0
#include "ds/nn/kernels_tier.inl"

namespace ds::nn::detail {

const KernelOps* GetGenericOps() { return generic::TierOps(); }

}  // namespace ds::nn::detail

#include "ds/nn/quant.h"

#include <cmath>
#include <cstring>

#include "ds/util/contract.h"

namespace ds::nn {

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kFp32: return "fp32";
    case QuantMode::kFp16: return "fp16";
    case QuantMode::kInt8: return "int8";
  }
  return "unknown";
}

Result<QuantMode> ParseQuantMode(const std::string& name) {
  if (name == "fp32" || name == "none") return QuantMode::kFp32;
  if (name == "fp16") return QuantMode::kFp16;
  if (name == "int8") return QuantMode::kInt8;
  return Status::InvalidArgument("unknown quant mode '" + name +
                                 "' (want fp32, fp16, or int8)");
}

uint16_t F32ToF16(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const int32_t exp = static_cast<int32_t>((bits >> 23) & 0xffu) - 127 + 15;
  uint32_t mant = bits & 0x7fffffu;

  if (((bits >> 23) & 0xffu) == 0xffu) {
    // Inf / NaN: keep a nonzero mantissa bit for NaN.
    return static_cast<uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0));
  }
  if (exp >= 0x1f) return static_cast<uint16_t>(sign | 0x7c00u);  // overflow
  if (exp <= 0) {
    if (exp < -10) return static_cast<uint16_t>(sign);  // underflow to 0
    // Subnormal half: shift the (implicit-1) mantissa into place with
    // round-to-nearest-even.
    mant |= 0x800000u;
    const int shift = 14 - exp;
    const uint32_t rounded =
        (mant >> shift) +
        (((mant >> (shift - 1)) & 1u) &
         (((mant & ((1u << (shift - 1)) - 1)) != 0 || ((mant >> shift) & 1u))
              ? 1u
              : 0u));
    return static_cast<uint16_t>(sign | rounded);
  }
  // Normal: round mantissa 23 -> 10 bits, to nearest even. Increment when
  // the round bit is set and either a sticky bit (low 12) or the result's
  // lsb (bit 13) is — i.e. not an exactly-halfway-to-even case.
  uint32_t half = sign | (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  const uint32_t round_bit = mant & 0x1000u;
  if (round_bit && (mant & 0x2fffu) != 0) ++half;
  return static_cast<uint16_t>(half);
}

float F16ToF32(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1fu;
  uint32_t mant = half & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while ((mant & 0x400u) == 0);
      bits = sign | ((127 - 15 - e) << 23) | ((mant & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

void PackedLinear::Write(util::BinaryWriter* w) const {
  w->WriteU8(static_cast<uint8_t>(mode));
  w->WriteU64(in);
  w->WriteU64(out);
  w->WritePodVector(q);
  w->WritePodVector(half);
  w->WritePodVector(scales);
}

Result<PackedLinear> PackedLinear::Read(util::BinaryReader* r) {
  PackedLinear p;
  uint8_t mode = 0;
  DS_RETURN_NOT_OK(r->ReadU8(&mode));
  if (mode > static_cast<uint8_t>(QuantMode::kInt8)) {
    return Status::ParseError("invalid quant mode " + std::to_string(mode));
  }
  p.mode = static_cast<QuantMode>(mode);
  uint64_t v = 0;
  DS_RETURN_NOT_OK(r->ReadU64(&v));
  p.in = v;
  DS_RETURN_NOT_OK(r->ReadU64(&v));
  p.out = v;
  // Cap the header shape before computing `in * out`: corrupt dimensions
  // must not wrap the cell count into something that happens to match the
  // (bounds-checked, hence small) payload vectors below.
  if (p.in > (uint64_t{1} << 20) || p.out > (uint64_t{1} << 20)) {
    return Status::ParseError("implausible packed weight shape " +
                              std::to_string(p.in) + "x" +
                              std::to_string(p.out));
  }
  DS_RETURN_NOT_OK(r->ReadPodVector(&p.q));
  DS_RETURN_NOT_OK(r->ReadPodVector(&p.half));
  DS_RETURN_NOT_OK(r->ReadPodVector(&p.scales));
  const size_t cells = p.in * p.out;
  const bool shape_ok =
      (p.mode == QuantMode::kInt8 && p.q.size() == cells &&
       p.scales.size() == p.out && p.half.empty()) ||
      (p.mode == QuantMode::kFp16 && p.half.size() == cells &&
       p.q.empty() && p.scales.empty()) ||
      (p.mode == QuantMode::kFp32 && p.q.empty() && p.half.empty() &&
       p.scales.empty());
  if (!shape_ok) {
    return Status::ParseError("packed weight payload disagrees with its "
                              "mode/shape header");
  }
  return p;
}

PackedLinear PackWeights(const Tensor& weight, QuantMode mode) {
  DS_REQUIRE(weight.rank() == 2, "PackWeights wants a 2D weight, got rank %zu",
             weight.rank());
  PackedLinear p;
  p.mode = mode;
  p.in = weight.dim(0);
  p.out = weight.dim(1);
  const float* wd = weight.data();
  if (mode == QuantMode::kFp32) return p;

  if (mode == QuantMode::kFp16) {
    p.half.resize(p.in * p.out);
    for (size_t i = 0; i < p.in * p.out; ++i) p.half[i] = F32ToF16(wd[i]);
    return p;
  }

  // int8: per-output-channel (per-column) symmetric scales.
  p.scales.assign(p.out, 1.0f);
  for (size_t j = 0; j < p.out; ++j) {
    float amax = 0.0f;
    for (size_t i = 0; i < p.in; ++i) {
      amax = std::max(amax, std::fabs(wd[i * p.out + j]));
    }
    if (amax > 0.0f) p.scales[j] = amax / 127.0f;
  }
  p.q.resize(p.in * p.out);
  for (size_t i = 0; i < p.in; ++i) {
    for (size_t j = 0; j < p.out; ++j) {
      const float scaled = wd[i * p.out + j] / p.scales[j];
      const long code = std::lround(scaled);
      p.q[i * p.out + j] = static_cast<int8_t>(
          code < -127 ? -127 : (code > 127 ? 127 : code));
    }
  }
  return p;
}

Tensor DequantizeWeights(const PackedLinear& p) {
  Tensor w({p.in, p.out});
  float* wd = w.data();
  switch (p.mode) {
    case QuantMode::kFp32:
      DS_REQUIRE(false, "cannot dequantize an fp32 (unpacked) PackedLinear");
      break;
    case QuantMode::kFp16:
      for (size_t i = 0; i < p.in * p.out; ++i) wd[i] = F16ToF32(p.half[i]);
      break;
    case QuantMode::kInt8:
      for (size_t i = 0; i < p.in; ++i) {
        for (size_t j = 0; j < p.out; ++j) {
          wd[i * p.out + j] =
              static_cast<float>(p.q[i * p.out + j]) * p.scales[j];
        }
      }
      break;
  }
  return w;
}

}  // namespace ds::nn

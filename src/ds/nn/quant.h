// Weight quantization and packing for the inference hot path.
//
// A trained MSCN keeps its fp32 parameters (training, gradients, and the
// parity reference all need them); *inference* can additionally carry a
// packed copy of each Linear's weight matrix in a cheaper storage format:
//
//   int8  Per-output-channel symmetric quantization. For weight W [in,out]
//         the scale of output channel j is max_i |W[i][j]| / 127 and
//         q[i][j] = round(W[i][j] / scale[j]) clamped to [-127, 127]
//         (symmetric range; -128 is never produced). The kernels
//         accumulate x · q in fp32 and apply scale[j] once per output in
//         the fused bias/activation pass, so quantization error is exactly
//         the weight rounding — activations are never quantized. A zero
//         channel gets scale 1 and all-zero codes. 4x less weight traffic.
//
//   fp16  IEEE 754 binary16 storage, converted back to fp32 on load in the
//         kernel inner loop (VCVTPH2PS on F16C tiers, bit-exact software
//         conversion on the generic tier). Rounding is round-to-nearest-
//         even. 2x less weight traffic, ~3 decimal digits kept.
//
// Packing (the "pre-transposition" step): codes are stored row-major
// [in, out] — output-channel-contiguous rows — which is the exact order the
// accumulation kernels stream them in (one weight row per input nonzero),
// padded so every row starts 64-byte-aligned when `out` is a multiple of
// the lane width. The pack runs once at sketch publish/load, never per
// batch, and the packed bytes are serialized with the sketch (format v2)
// so a loaded sketch starts hot.
//
// Thread-safety: PackedLinear is immutable after construction; share
// freely across inference threads.

#ifndef DS_NN_QUANT_H_
#define DS_NN_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ds/nn/tensor.h"
#include "ds/util/serialize.h"
#include "ds/util/status.h"

namespace ds::nn {

enum class QuantMode : uint8_t {
  kFp32 = 0,  // no packing: kernels read the fp32 Parameter directly
  kFp16 = 1,
  kInt8 = 2,
};

const char* QuantModeName(QuantMode mode);

/// Parses "fp32" / "fp16" / "int8" (the dsctl / ds_served knob).
Result<QuantMode> ParseQuantMode(const std::string& name);

/// IEEE 754 binary16 conversions (round-to-nearest-even; handles
/// subnormals, infinities, NaN). The generic kernel tier and the pack step
/// use these; SIMD tiers use VCVTPH2PS, which implements the same mapping.
uint16_t F32ToF16(float value);
float F16ToF32(uint16_t half);

/// One Linear layer's packed weights (see file comment for the formats).
struct PackedLinear {
  QuantMode mode = QuantMode::kFp32;
  size_t in = 0;
  size_t out = 0;
  std::vector<int8_t> q;        // int8: [in, out] row-major
  std::vector<uint16_t> half;   // fp16: [in, out] row-major
  std::vector<float> scales;    // int8: per-output-channel, size `out`

  size_t bytes() const {
    return q.size() * sizeof(int8_t) + half.size() * sizeof(uint16_t) +
           scales.size() * sizeof(float);
  }

  void Write(util::BinaryWriter* writer) const;
  static Result<PackedLinear> Read(util::BinaryReader* reader);
};

/// Packs `weight` [in, out] into `mode` storage. mode == kFp32 returns an
/// empty PackedLinear (nothing to pack).
PackedLinear PackWeights(const Tensor& weight, QuantMode mode);

/// Reconstructs the fp32 matrix the kernels effectively multiply by
/// (dequantized codes). Tests and the parity gates use this.
Tensor DequantizeWeights(const PackedLinear& packed);

}  // namespace ds::nn

#endif  // DS_NN_QUANT_H_

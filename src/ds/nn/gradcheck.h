// Numerical gradient checking: verifies analytic backward passes by central
// finite differences. Used by the nn tests; exposed in the library so model
// authors can validate new architectures.

#ifndef DS_NN_GRADCHECK_H_
#define DS_NN_GRADCHECK_H_

#include <functional>

#include "ds/nn/layers.h"

namespace ds::nn {

struct GradCheckResult {
  double max_abs_error = 0;   // worst |analytic - numeric|
  double max_rel_error = 0;   // worst relative error among non-tiny grads
  size_t checked = 0;
};

/// Checks d(loss)/d(param) for every entry of `param` against central
/// differences of `loss_fn`, which must recompute the full forward pass and
/// return the scalar loss. The caller must have already populated
/// param->grad via one analytic backward pass.
GradCheckResult CheckParameterGradient(
    Parameter* param, const std::function<double()>& loss_fn,
    double epsilon = 1e-3);

}  // namespace ds::nn

#endif  // DS_NN_GRADCHECK_H_

#include "ds/nn/tensor.h"

#include <cstdint>
#include <sstream>

#include "ds/util/arena.h"

namespace ds::nn {

void FloatBuffer::Grow(size_t n) {
  // Geometric growth; 16 floats (one cache line) minimum keeps tiny
  // tensors from reallocating per element.
  size_t cap = cap_ < 16 ? 16 : cap_;
  while (cap < n) cap *= 2;

  float* fresh = nullptr;
  void* fresh_base = nullptr;
  if (arena_ != nullptr) {
    fresh = static_cast<float*>(arena_->Allocate(cap * sizeof(float), 64));
  } else {
    // Over-allocate through the counted plain operator new (the aligned
    // overloads bypass util/alloc's counters) and align by hand.
    fresh_base = ::operator new(cap * sizeof(float) + 64);
    fresh = reinterpret_cast<float*>(
        (reinterpret_cast<uintptr_t>(fresh_base) + 63) & ~uintptr_t{63});
  }
  if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(float));
  FreeSelf();  // old arena blocks stay in the arena; old heap blocks free
  data_ = fresh;
  heap_base_ = fresh_base;
  cap_ = cap;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DS_CHECK_EQ(a.rank(), 2u);
  DS_CHECK_EQ(b.rank(), 2u);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  DS_CHECK_EQ(k, b.dim(0));
  Tensor c({n, m});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  // i-k-j order: unit-stride inner loop over both B and C rows.
  for (size_t i = 0; i < n; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = ad[i * k + kk];
      if (av == 0.0f) continue;  // one-hot/bitmap inputs are mostly zero
      const float* brow = bd + kk * m;
      float* crow = cd + i * m;
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  DS_CHECK_EQ(a.rank(), 2u);
  DS_CHECK_EQ(b.rank(), 2u);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  DS_CHECK_EQ(k, b.dim(1));
  Tensor c({n, m});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  DS_CHECK_EQ(a.rank(), 2u);
  DS_CHECK_EQ(b.rank(), 2u);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  DS_CHECK_EQ(n, b.dim(0));
  Tensor c({k, m});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = ad + i * k;
    const float* brow = bd + i * m;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = cd + kk * m;
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void AddBiasRows(Tensor* x, const Tensor& bias) {
  DS_CHECK_EQ(x->rank(), 2u);
  DS_CHECK_EQ(bias.rank(), 1u);
  const size_t n = x->dim(0), m = x->dim(1);
  DS_CHECK_EQ(bias.dim(0), m);
  float* xd = x->data();
  const float* bd = bias.data();
  for (size_t i = 0; i < n; ++i) {
    float* row = xd + i * m;
    for (size_t j = 0; j < m; ++j) row[j] += bd[j];
  }
}

void SumRowsInto(const Tensor& x, Tensor* out) {
  DS_CHECK_EQ(x.rank(), 2u);
  DS_CHECK_EQ(out->rank(), 1u);
  const size_t n = x.dim(0), m = x.dim(1);
  DS_CHECK_EQ(out->dim(0), m);
  const float* xd = x.data();
  float* od = out->data();
  for (size_t i = 0; i < n; ++i) {
    const float* row = xd + i * m;
    for (size_t j = 0; j < m; ++j) od[j] += row[j];
  }
}

void Axpy(float a, const Tensor& x, Tensor* out) {
  DS_CHECK(x.SameShape(*out));
  const float* xd = x.data();
  float* od = out->data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) od[i] += a * xd[i];
}

}  // namespace ds::nn

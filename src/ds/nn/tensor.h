// A minimal dense float32 tensor for the from-scratch neural network.
//
// This replaces the paper's PyTorch dependency. Tensors are row-major and
// CPU-only; the library implements exactly the operations the MSCN model
// needs (matmul, bias, elementwise ops, masked set pooling) with explicit
// backward passes — no general autograd, the model wires gradients by hand
// and verifies them against numerical differentiation in tests.

#ifndef DS_NN_TENSOR_H_
#define DS_NN_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "ds/util/contract.h"
#include "ds/util/logging.h"

namespace ds::nn {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<size_t> shape) : shape_(std::move(shape)) {
    size_t n = 1;
    for (size_t d : shape_) n *= d;
    data_.assign(n, 0.0f);
  }

  static Tensor Zeros(std::vector<size_t> shape) {
    return Tensor(std::move(shape));
  }

  static Tensor FromData(std::vector<size_t> shape, std::vector<float> data) {
    Tensor t;
    t.shape_ = std::move(shape);
    size_t n = 1;
    for (size_t d : t.shape_) n *= d;
    DS_REQUIRE(n == data.size(),
               "FromData: shape wants %zu elements, data has %zu", n,
               data.size());
    t.data_ = std::move(data);
    return t;
  }

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const { return shape_[i]; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& at(size_t i) { return data_[i]; }
  float at(size_t i) const { return data_[i]; }

  // Element access sits on inference inner loops, so the rank agreement is
  // a DS_DCHECK: free in Release, enforced in Debug/sanitizer builds.
  float& at(size_t i, size_t j) {
    DS_DCHECK(rank() == 2, "2D at() on rank-%zu tensor", rank());
    return data_[i * shape_[1] + j];
  }
  float at(size_t i, size_t j) const {
    DS_DCHECK(rank() == 2, "2D at() on rank-%zu tensor", rank());
    return data_[i * shape_[1] + j];
  }

  float& at(size_t i, size_t j, size_t k) {
    DS_DCHECK(rank() == 3, "3D at() on rank-%zu tensor", rank());
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(size_t i, size_t j, size_t k) const {
    DS_DCHECK(rank() == 3, "3D at() on rank-%zu tensor", rank());
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  /// Reshapes this tensor in place, reusing the existing buffer when its
  /// capacity suffices (the Workspace reuse path). Element values are
  /// unspecified afterwards — callers overwrite. Returns true if the buffer
  /// had to grow (i.e. the call heap-allocated).
  bool ResizeInPlace(const std::vector<size_t>& shape) {
    return ResizeInPlaceSpan(shape.data(), shape.data() + shape.size());
  }

  /// Brace-list overload: `t.ResizeInPlace({b, h})` stays allocation-free
  /// (the initializer_list is stack-backed; the vector overload would
  /// materialize a temporary heap vector at every call site).
  bool ResizeInPlace(std::initializer_list<size_t> shape) {
    return ResizeInPlaceSpan(shape.begin(), shape.end());
  }

  /// Bytes of backing storage currently reserved.
  size_t capacity_bytes() const { return data_.capacity() * sizeof(float); }

  /// Reinterprets the tensor with a new shape of identical element count
  /// (row-major data is untouched).
  Tensor Reshaped(std::vector<size_t> shape) const {
    Tensor t = *this;
    size_t n = 1;
    for (size_t d : shape) n *= d;
    DS_REQUIRE(n == size(),
               "Reshaped: new shape wants %zu elements, tensor has %zu", n,
               size());
    t.shape_ = std::move(shape);
    return t;
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const;

 private:
  bool ResizeInPlaceSpan(const size_t* begin, const size_t* end) {
    size_t n = 1;
    for (const size_t* d = begin; d != end; ++d) n *= *d;
    shape_.assign(begin, end);
    const bool grew = n > data_.capacity();
    data_.resize(n);
    return grew;
  }

  std::vector<size_t> shape_;
  std::vector<float> data_;
};

// ---- Functional ops (allocate results) ---------------------------------------

/// C = A x B for 2D tensors: [n,k] x [k,m] -> [n,m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A x B^T: [n,k] x [m,k] -> [n,m]. Used in backward passes.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T x B: [n,k] x [n,m] -> [k,m]. Used for weight gradients.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Adds row vector `bias` [m] to every row of `x` [n,m], in place.
void AddBiasRows(Tensor* x, const Tensor& bias);

/// Column sums of `x` [n,m] -> [m]; accumulates into `out`.
void SumRowsInto(const Tensor& x, Tensor* out);

/// out += a * x (same shapes).
void Axpy(float a, const Tensor& x, Tensor* out);

}  // namespace ds::nn

#endif  // DS_NN_TENSOR_H_

// A minimal dense float32 tensor for the from-scratch neural network.
//
// This replaces the paper's PyTorch dependency. Tensors are row-major and
// CPU-only; the library implements exactly the operations the MSCN model
// needs (matmul, bias, elementwise ops, masked set pooling) with explicit
// backward passes — no general autograd, the model wires gradients by hand
// and verifies them against numerical differentiation in tests.

#ifndef DS_NN_TENSOR_H_
#define DS_NN_TENSOR_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "ds/util/contract.h"
#include "ds/util/logging.h"

namespace ds::util {
class Arena;
}  // namespace ds::util

namespace ds::nn {

/// The float storage behind Tensor: a 64-byte-aligned growable buffer with
/// an optional util::Arena backing. Unbound buffers allocate from the heap
/// (through the counted global operator new); once BindArena() points a
/// buffer at an arena, growth bump-allocates from it instead — the
/// workspace path, where buffers warm up once on the worker's (pinned,
/// first-touched) arena and then never allocate again. Arena-backed blocks
/// are never individually freed (the arena reclaims them wholesale), which
/// is safe precisely because workspace buffers only ever grow.
///
/// Grow-only semantics match std::vector: resize() preserves existing
/// elements and zero-fills the extension; capacity never shrinks.
class FloatBuffer {
 public:
  FloatBuffer() = default;
  ~FloatBuffer() { FreeSelf(); }

  FloatBuffer(const FloatBuffer& o) { assign(o.data_, o.size_); }
  FloatBuffer& operator=(const FloatBuffer& o) {
    if (this != &o) assign(o.data_, o.size_);  // keeps this buffer's arena
    return *this;
  }
  FloatBuffer(FloatBuffer&& o) noexcept { MoveFrom(&o); }
  FloatBuffer& operator=(FloatBuffer&& o) noexcept {
    if (this != &o) {
      FreeSelf();
      MoveFrom(&o);
    }
    return *this;
  }

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  void resize(size_t n) {
    if (n > cap_) Grow(n);
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(float));
    size_ = n;
  }

  void assign(size_t n, float v) {
    if (n > cap_) Grow(n);
    size_ = n;
    std::fill(data_, data_ + n, v);
  }

  void assign(const float* p, size_t n) {
    if (n > cap_) Grow(n);
    size_ = n;
    if (n > 0) std::memmove(data_, p, n * sizeof(float));
  }

  /// Future growth allocates from `arena` (nullptr unbinds — back to heap).
  /// The current block stays where it is; Tensor buffers only grow, so the
  /// next growth migrates the contents onto the arena.
  void BindArena(util::Arena* arena) { arena_ = arena; }
  util::Arena* arena() const { return arena_; }

 private:
  void Grow(size_t n);   // tensor.cc (needs the Arena definition)
  void FreeSelf() {
    // heap_base_ is null for arena blocks: the arena owns them.
    if (heap_base_ != nullptr) ::operator delete(heap_base_);
    heap_base_ = nullptr;
  }
  void MoveFrom(FloatBuffer* o) {
    data_ = std::exchange(o->data_, nullptr);
    heap_base_ = std::exchange(o->heap_base_, nullptr);
    size_ = std::exchange(o->size_, 0);
    cap_ = std::exchange(o->cap_, 0);
    arena_ = std::exchange(o->arena_, nullptr);
  }

  float* data_ = nullptr;
  void* heap_base_ = nullptr;  // unaligned heap block to free; null if arena
  size_t size_ = 0;
  size_t cap_ = 0;
  util::Arena* arena_ = nullptr;
};

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<size_t> shape) : shape_(std::move(shape)) {
    size_t n = 1;
    for (size_t d : shape_) n *= d;
    data_.assign(n, 0.0f);
  }

  static Tensor Zeros(std::vector<size_t> shape) {
    return Tensor(std::move(shape));
  }

  static Tensor FromData(std::vector<size_t> shape, std::vector<float> data) {
    Tensor t;
    t.shape_ = std::move(shape);
    size_t n = 1;
    for (size_t d : t.shape_) n *= d;
    DS_REQUIRE(n == data.size(),
               "FromData: shape wants %zu elements, data has %zu", n,
               data.size());
    t.data_.assign(data.data(), data.size());
    return t;
  }

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const { return shape_[i]; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  FloatBuffer& vec() { return data_; }
  const FloatBuffer& vec() const { return data_; }

  /// Routes this tensor's future buffer growth through `arena` (see
  /// FloatBuffer::BindArena). Workspace calls this on its slots; model
  /// parameters stay heap-backed.
  void BindArena(util::Arena* arena) { data_.BindArena(arena); }

  float& at(size_t i) { return data_[i]; }
  float at(size_t i) const { return data_[i]; }

  // Element access sits on inference inner loops, so the rank agreement is
  // a DS_DCHECK: free in Release, enforced in Debug/sanitizer builds.
  float& at(size_t i, size_t j) {
    DS_DCHECK(rank() == 2, "2D at() on rank-%zu tensor", rank());
    return data_[i * shape_[1] + j];
  }
  float at(size_t i, size_t j) const {
    DS_DCHECK(rank() == 2, "2D at() on rank-%zu tensor", rank());
    return data_[i * shape_[1] + j];
  }

  float& at(size_t i, size_t j, size_t k) {
    DS_DCHECK(rank() == 3, "3D at() on rank-%zu tensor", rank());
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(size_t i, size_t j, size_t k) const {
    DS_DCHECK(rank() == 3, "3D at() on rank-%zu tensor", rank());
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  /// Reshapes this tensor in place, reusing the existing buffer when its
  /// capacity suffices (the Workspace reuse path). Element values are
  /// unspecified afterwards — callers overwrite. Returns true if the buffer
  /// had to grow (i.e. the call heap-allocated).
  bool ResizeInPlace(const std::vector<size_t>& shape) {
    return ResizeInPlaceSpan(shape.data(), shape.data() + shape.size());
  }

  /// Brace-list overload: `t.ResizeInPlace({b, h})` stays allocation-free
  /// (the initializer_list is stack-backed; the vector overload would
  /// materialize a temporary heap vector at every call site).
  bool ResizeInPlace(std::initializer_list<size_t> shape) {
    return ResizeInPlaceSpan(shape.begin(), shape.end());
  }

  /// Bytes of backing storage currently reserved.
  size_t capacity_bytes() const { return data_.capacity() * sizeof(float); }

  /// Reinterprets the tensor with a new shape of identical element count
  /// (row-major data is untouched).
  Tensor Reshaped(std::vector<size_t> shape) const {
    Tensor t = *this;
    size_t n = 1;
    for (size_t d : shape) n *= d;
    DS_REQUIRE(n == size(),
               "Reshaped: new shape wants %zu elements, tensor has %zu", n,
               size());
    t.shape_ = std::move(shape);
    return t;
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const;

 private:
  bool ResizeInPlaceSpan(const size_t* begin, const size_t* end) {
    size_t n = 1;
    for (const size_t* d = begin; d != end; ++d) n *= *d;
    shape_.assign(begin, end);
    const bool grew = n > data_.capacity();
    data_.resize(n);
    return grew;
  }

  std::vector<size_t> shape_;
  FloatBuffer data_;
};

// ---- Functional ops (allocate results) ---------------------------------------

/// C = A x B for 2D tensors: [n,k] x [k,m] -> [n,m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A x B^T: [n,k] x [m,k] -> [n,m]. Used in backward passes.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T x B: [n,k] x [n,m] -> [k,m]. Used for weight gradients.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Adds row vector `bias` [m] to every row of `x` [n,m], in place.
void AddBiasRows(Tensor* x, const Tensor& bias);

/// Column sums of `x` [n,m] -> [m]; accumulates into `out`.
void SumRowsInto(const Tensor& x, Tensor* out);

/// out += a * x (same shapes).
void Axpy(float a, const Tensor& x, Tensor* out);

}  // namespace ds::nn

#endif  // DS_NN_TENSOR_H_

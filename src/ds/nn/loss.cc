#include "ds/nn/loss.h"

#include <algorithm>
#include <cmath>

#include "ds/util/logging.h"

namespace ds::nn {

LogNormalizer LogNormalizer::Fit(const std::vector<uint64_t>& cards) {
  LogNormalizer n;
  n.min_log = 0.0;
  double max_log = 1.0;
  for (uint64_t c : cards) {
    max_log = std::max(max_log, std::log(static_cast<double>(std::max<uint64_t>(c, 1))));
  }
  n.max_log = max_log;
  return n;
}

double LogNormalizer::Normalize(double cardinality) const {
  const double l = std::log(std::max(cardinality, 1.0));
  const double span = std::max(max_log - min_log, 1e-9);
  return std::clamp((l - min_log) / span, 0.0, 1.0);
}

double LogNormalizer::Denormalize(double y) const {
  const double span = std::max(max_log - min_log, 1e-9);
  return std::max(std::exp(y * span + min_log), 1.0);
}

void LogNormalizer::Write(util::BinaryWriter* writer) const {
  writer->WriteF64(min_log);
  writer->WriteF64(max_log);
}

Result<LogNormalizer> LogNormalizer::Read(util::BinaryReader* reader) {
  LogNormalizer n;
  DS_RETURN_NOT_OK(reader->ReadF64(&n.min_log));
  DS_RETURN_NOT_OK(reader->ReadF64(&n.max_log));
  return n;
}

double QErrorLoss(const Tensor& y, const std::vector<double>& true_cards,
                  const LogNormalizer& norm, Tensor* dy) {
  const size_t b = y.dim(0);
  DS_CHECK_EQ(b, true_cards.size());
  DS_CHECK(y.SameShape(*dy));
  const double span = std::max(norm.max_log - norm.min_log, 1e-9);
  double total = 0;
  for (size_t i = 0; i < b; ++i) {
    const double yi = std::clamp(static_cast<double>(y.at(i)), 1e-6, 1.0 - 1e-6);
    const double est = norm.Denormalize(yi);
    const double truth = std::max(true_cards[i], 1.0);
    double q, dq_dy;
    if (est >= truth) {
      q = est / truth;
      // d(est)/dy = est * span  =>  dq/dy = q * span.
      dq_dy = q * span;
    } else {
      q = truth / est;
      dq_dy = -q * span;
    }
    total += q;
    dy->at(i) = static_cast<float>(dq_dy / static_cast<double>(b));
  }
  return total / static_cast<double>(b);
}

double MseLoss(const Tensor& y, const std::vector<double>& true_cards,
               const LogNormalizer& norm, Tensor* dy) {
  const size_t b = y.dim(0);
  DS_CHECK_EQ(b, true_cards.size());
  DS_CHECK(y.SameShape(*dy));
  double total = 0;
  for (size_t i = 0; i < b; ++i) {
    const double target = norm.Normalize(true_cards[i]);
    const double diff = static_cast<double>(y.at(i)) - target;
    total += diff * diff;
    dy->at(i) = static_cast<float>(2.0 * diff / static_cast<double>(b));
  }
  return total / static_cast<double>(b);
}

}  // namespace ds::nn

// A per-thread tensor arena for allocation-free inference.
//
// Workspace hands out Tensor (and SparseRows) slots in acquisition order and
// keeps their buffers alive across Reset(), so a steady-state inference
// batch — one Reset() + a fixed sequence of Acquire() calls, each resized
// via Tensor::ResizeInPlace — touches the heap only while the workspace is
// still warming up to the largest batch it has seen.
//
// Ownership rules (see DESIGN.md "Kernel layer"):
//   * The workspace owns every slot. Pointers returned by Acquire() stay
//     valid until the next Reset() logically releases them; the buffers
//     themselves live as long as the workspace.
//   * Acquire order must be deterministic per code path, so a repeated call
//     reuses the same (already sized) slots. All ds::nn inference paths
//     satisfy this: they acquire a fixed number of slots per call.
//   * A Workspace is NOT thread-safe; use one per thread (the serving layer
//     and DeepSketch::EstimateMany keep a thread_local one).
//   * Results returned out of a workspace-backed call (e.g. Mlp::InferInto)
//     point into the workspace; copy them out before Reset() if they must
//     outlive the batch.

#ifndef DS_NN_WORKSPACE_H_
#define DS_NN_WORKSPACE_H_

#include <cstddef>
#include <deque>
#include <memory>

#include "ds/nn/kernels.h"
#include "ds/nn/tensor.h"
#include "ds/util/arena.h"

namespace ds::nn {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Backs tensor-slot growth with a huge-page bump arena (see
  /// ds/util/arena.h). Call on the owning thread — ideally right after it
  /// was pinned (serve worker loops), so the prefault lands the pages on
  /// that worker's NUMA node via first-touch. Slots that already grew heap
  /// buffers keep them until their next growth. Idempotent.
  void EnableArena(const util::ArenaOptions& options = {}) {
    if (arena_) return;
    arena_ = std::make_unique<util::Arena>(options);
    for (Tensor& t : tensors_) t.BindArena(arena_.get());
  }

  /// Null until EnableArena.
  const util::Arena* arena() const { return arena_.get(); }

  /// Next tensor slot. Shape/contents are whatever the previous user left;
  /// callers size it with ResizeInPlace and overwrite.
  Tensor* Acquire() {
    if (next_tensor_ == tensors_.size()) {
      tensors_.emplace_back();
      if (arena_) tensors_.back().BindArena(arena_.get());
    }
    return &tensors_[next_tensor_++];
  }

  /// Next CSR scratch slot (callers Clear() it, which keeps capacity).
  SparseRows* AcquireSparse() {
    if (next_sparse_ == sparse_.size()) sparse_.emplace_back();
    return &sparse_[next_sparse_++];
  }

  /// Logically releases every slot (buffers are retained for reuse).
  void Reset() {
    next_tensor_ = 0;
    next_sparse_ = 0;
  }

  size_t tensor_slots() const { return tensors_.size(); }
  size_t sparse_slots() const { return sparse_.size(); }

  /// Total bytes of backing storage currently reserved across all slots.
  /// A stable value across batches means the workspace has stopped
  /// allocating — the serving layer exports this as a gauge.
  size_t capacity_bytes() const {
    size_t bytes = 0;
    for (const Tensor& t : tensors_) bytes += t.capacity_bytes();
    for (const SparseRows& s : sparse_) {
      bytes += s.row_offsets.capacity() * sizeof(uint32_t) +
               s.cols.capacity() * sizeof(uint32_t) +
               s.vals.capacity() * sizeof(float);
    }
    return bytes;
  }

 private:
  // Deques keep slot addresses stable while the pool grows.
  std::unique_ptr<util::Arena> arena_;  // null until EnableArena
  std::deque<Tensor> tensors_;
  std::deque<SparseRows> sparse_;
  size_t next_tensor_ = 0;
  size_t next_sparse_ = 0;
};

}  // namespace ds::nn

#endif  // DS_NN_WORKSPACE_H_

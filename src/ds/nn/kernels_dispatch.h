// Internal kernel dispatch table — the seam between the public, validating
// kernel wrappers (kernels.cc) and the per-tier implementations
// (kernels_generic.cc / kernels_avx2.cc / kernels_avx2_fma.cc /
// kernels_avx512.cc).
//
// Tier translation units are compiled with per-file target flags
// (-mavx2, -mfma, -mavx512*; see src/CMakeLists.txt), so they must not
// export anything the baseline binary could accidentally link against:
// a vague-linkage (inline/template) function compiled in an AVX-512 TU can
// be the copy the linker keeps, and then a pre-AVX machine faults on code
// the dispatcher never chose. Hence the rules for this header and the
// tier TUs:
//
//   * this header declares only the raw-pointer table and the per-tier
//     getters — no inline functions, no templates, no Tensor/Status types;
//   * everything inside a tier TU lives in an anonymous namespace
//     (internal linkage) except its single GetXxxOps() definition.
//
// All argument validation, output resizing, stats counting, and no-alloc
// guarding happen in the public wrappers; tier code sees pre-validated
// pointers and extents only.

#ifndef DS_NN_KERNELS_DISPATCH_H_
#define DS_NN_KERNELS_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace ds::nn::detail {

/// One tier's kernel entry points. Matrix arguments are dense row-major;
/// sparse inputs arrive as CSR triples (offsets of size n+1, then parallel
/// cols/vals arrays). Quantized weights are [k, m] row-major int8 codes
/// with per-output-channel scales, or [k, m] IEEE binary16 halves.
struct KernelOps {
  // c[n,m] = a[n,k] * b[k,m]
  void (*matmul)(const float* a, const float* b, float* c, size_t n,
                 size_t k, size_t m);
  // c[n,m] = a[n,k] * b[m,k]^T
  void (*matmul_tb)(const float* a, const float* b, float* c, size_t n,
                    size_t k, size_t m);
  // c[k,m] += a[n,k]^T * b[n,m]
  void (*matmul_ta_acc)(const float* a, const float* b, float* c, size_t n,
                        size_t k, size_t m);
  // y[n,m] = x[n,k] * w[k,m] + bias (+ ReLU)
  void (*linear)(const float* x, const float* w, const float* bias,
                 bool fuse_relu, float* y, size_t n, size_t k, size_t m);
  // y[n,m] = csr(x) * w[k,m] + bias (+ ReLU)
  void (*sparse_linear)(const uint32_t* offs, const uint32_t* cols,
                        const float* vals, size_t n, const float* w,
                        const float* bias, bool fuse_relu, float* y,
                        size_t m);
  // y[n,m] = (x[n,k] * q[k,m]) .* scales + bias (+ ReLU), fp32 accumulate
  void (*linear_i8)(const float* x, const int8_t* q, const float* scales,
                    const float* bias, bool fuse_relu, float* y, size_t n,
                    size_t k, size_t m);
  void (*sparse_linear_i8)(const uint32_t* offs, const uint32_t* cols,
                           const float* vals, size_t n, const int8_t* q,
                           const float* scales, const float* bias,
                           bool fuse_relu, float* y, size_t m);
  // y[n,m] = x[n,k] * f32(h[k,m]) + bias (+ ReLU)
  void (*linear_f16)(const float* x, const uint16_t* h, const float* bias,
                     bool fuse_relu, float* y, size_t n, size_t k, size_t m);
  void (*sparse_linear_f16)(const uint32_t* offs, const uint32_t* cols,
                            const float* vals, size_t n, const uint16_t* h,
                            const float* bias, bool fuse_relu, float* y,
                            size_t m);
};

/// Per-tier tables. A getter returns nullptr when its tier was compiled
/// without the required target flags (the TU falls back to a stub), so the
/// dispatcher treats "not compiled in" and "CPU lacks it" identically.
/// GetGenericOps() never returns nullptr.
const KernelOps* GetGenericOps();
const KernelOps* GetAvx2Ops();
const KernelOps* GetAvx2FmaOps();
const KernelOps* GetAvx512Ops();

}  // namespace ds::nn::detail

#endif  // DS_NN_KERNELS_DISPATCH_H_

// AVX2 kernel tier (no FMA): 8/16-wide mul-then-add in the reference
// k-order, so outputs stay bit-for-bit identical to the generic tier and
// the tensor.h references — which is why this is the default dispatch
// ceiling. Requires F16C for the fp16 weight path (VCVTPH2PS).
//
// Compiled with -mavx2 -mf16c via per-file flags (src/CMakeLists.txt);
// when the toolchain or DS_ENABLE_AVX2=OFF withholds them, this TU
// degrades to a stub and the dispatcher skips the tier.

#include "ds/nn/kernels_dispatch.h"

#if defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

#define DS_TIER_NS avx2
#define DS_TIER_SIMD 256
#define DS_TIER_FMA 0
#include "ds/nn/kernels_tier.inl"

namespace ds::nn::detail {

const KernelOps* GetAvx2Ops() { return avx2::TierOps(); }

}  // namespace ds::nn::detail

#else  // !(__AVX2__ && __F16C__)

namespace ds::nn::detail {

const KernelOps* GetAvx2Ops() { return nullptr; }

}  // namespace ds::nn::detail

#endif

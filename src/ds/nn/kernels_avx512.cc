// AVX-512 kernel tier: 16-wide FMA main loops with 8-wide AVX2 and scalar
// tails. Like the FMA tier this contracts multiply-adds, so it is
// tolerance-equal (not bit-equal) to the generic/AVX2 tiers. Opt-in via
// DS_KERNEL_TIER=avx512|native. The dispatcher additionally requires the
// OS to save zmm state (XCR0) before offering this tier.
//
// Compiled with -mavx512f -mavx512bw -mavx512vl -mfma -mf16c via per-file
// flags; degrades to a stub without them.

#include "ds/nn/kernels_dispatch.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__FMA__) && defined(__F16C__)

#include <immintrin.h>

#define DS_TIER_NS avx512
#define DS_TIER_SIMD 512
#define DS_TIER_FMA 1
#include "ds/nn/kernels_tier.inl"

namespace ds::nn::detail {

const KernelOps* GetAvx512Ops() { return avx512::TierOps(); }

}  // namespace ds::nn::detail

#else  // !(AVX-512 F/BW/VL && FMA && F16C)

namespace ds::nn::detail {

const KernelOps* GetAvx512Ops() { return nullptr; }

}  // namespace ds::nn::detail

#endif

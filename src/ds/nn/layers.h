// Neural-network layers with explicit forward/backward passes.
//
// Each layer caches what its backward pass needs. Gradients accumulate into
// Parameter::grad until the optimizer consumes them (call ZeroGrad between
// steps). All layers operate on 2D activations [batch, features]; the MSCN
// model flattens set dimensions into the batch dimension before calling
// into them.
//
// Every layer additionally provides a const `Infer` path that computes the
// same outputs without touching the backward caches. Inference through
// `Infer` reads only the (immutable after training) weights, so any number
// of threads may run it on a shared model concurrently — the property the
// serving layer (ds::serve) relies on. `Forward` remains the training path
// and is not thread-safe.

#ifndef DS_NN_LAYERS_H_
#define DS_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "ds/nn/kernels.h"
#include "ds/nn/tensor.h"
#include "ds/nn/workspace.h"
#include "ds/util/random.h"
#include "ds/util/serialize.h"
#include "ds/util/status.h"

namespace ds::nn {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Parameter(std::string n, std::vector<size_t> shape)
      : name(std::move(n)), value(shape), grad(shape) {}
};

/// Fully connected layer: y = x W + b, x [N,in] -> y [N,out].
class Linear {
 public:
  Linear(std::string name, size_t in, size_t out);

  /// He-uniform initialization (suits the ReLU nets the MSCN uses).
  void Initialize(util::Pcg32* rng);

  Tensor Forward(const Tensor& x);
  /// Returns dL/dx; accumulates dL/dW and dL/db. Must follow a Forward.
  Tensor Backward(const Tensor& dy);

  /// Forward without caching: const, safe to call concurrently.
  Tensor Infer(const Tensor& x) const;

  /// Fused allocation-free inference: *y = x W + b, then ReLU when
  /// `fuse_relu`. `y` is resized in place (zero-allocation once warm) and
  /// must not alias `x`. Bit-for-bit identical to Infer (+ ApplyInPlace).
  void InferInto(const Tensor& x, bool fuse_relu, Tensor* y) const;

  /// Same, with the input in CSR form (the featurized one-hot rows).
  void InferSparseInto(const SparseRows& x, bool fuse_relu, Tensor* y) const;

  /// Builds (kInt8/kFp16) or clears (kFp32) the packed inference copy of
  /// the weights; all Infer* paths route through it once set, while
  /// Forward/Backward keep reading the fp32 parameters. Pack after
  /// training: optimizer steps do not refresh the packed copy.
  void Pack(QuantMode mode);

  /// The storage format the inference paths currently read.
  QuantMode quant_mode() const {
    return packed_ ? packed_->mode : QuantMode::kFp32;
  }
  /// Null when unpacked (fp32 inference).
  const PackedLinear* packed() const { return packed_.get(); }

  /// Packed-weight persistence (sketch format v2). WritePacked always
  /// emits a record — an empty kFp32 one when unpacked — so the stream
  /// stays self-describing; ReadPacked validates shape against this layer.
  void WritePacked(util::BinaryWriter* writer) const;
  Status ReadPacked(util::BinaryReader* reader);

  std::vector<Parameter*> Parameters() { return {&weight_, &bias_}; }
  size_t in_features() const { return weight_.value.dim(0); }
  size_t out_features() const { return weight_.value.dim(1); }

 private:
  Parameter weight_;  // [in, out]
  Parameter bias_;    // [out]
  // Immutable once built; shared so copied Linears (models are registry
  // values) alias one packed copy instead of re-packing.
  std::shared_ptr<const PackedLinear> packed_;
  Tensor cached_x_;
};

/// Elementwise max(0, x). Takes its input by value so callers holding an
/// rvalue activation move it in; the activation is applied in place and one
/// copy is kept for Backward (the output doubles as the cache — the ReLU
/// gradient mask is recoverable from the output alone).
class ReLU {
 public:
  Tensor Forward(Tensor x);
  Tensor Backward(const Tensor& dy);

  /// In-place max(0, x) with no caching (inference path).
  static void ApplyInPlace(Tensor* x);

 private:
  Tensor cached_y_;
};

/// Elementwise logistic sigmoid (by-value input for the same reason as
/// ReLU; the backward pass needs only the output).
class Sigmoid {
 public:
  Tensor Forward(Tensor x);
  Tensor Backward(const Tensor& dy);

  /// In-place sigmoid with no caching (inference path).
  static void ApplyInPlace(Tensor* x);

 private:
  Tensor cached_y_;
};

/// A stack of Linear+ReLU blocks: sizes = {in, h1, ..., out}. The final
/// layer's ReLU is optional (the MSCN set modules use ReLU everywhere; the
/// output head ends in a bare Linear followed by an external Sigmoid).
class Mlp {
 public:
  Mlp(std::string name, const std::vector<size_t>& sizes,
      bool final_activation);

  void Initialize(util::Pcg32* rng);
  Tensor Forward(const Tensor& x);
  Tensor Backward(const Tensor& dy);
  /// Forward without caching: const, safe to call concurrently.
  Tensor Infer(const Tensor& x) const;

  /// Workspace-backed inference through the fused kernels: acquires two
  /// ping-pong slots from `ws` and returns a pointer to the one holding the
  /// output (valid until ws->Reset()). Bit-for-bit identical to Infer.
  /// Concurrent calls are safe with distinct workspaces.
  Tensor* InferInto(const Tensor& x, Workspace* ws) const;

  /// Same, feeding the first layer from CSR rows (the MSCN's sparse
  /// featurized inputs); later layers run dense.
  Tensor* InferSparseInto(const SparseRows& x, Workspace* ws) const;

  /// Packs (or unpacks, for kFp32) every layer's weights for inference.
  void Pack(QuantMode mode);
  /// The mode the layers are packed in (layers always agree).
  QuantMode quant_mode() const { return layers_.front().quant_mode(); }

  /// Packed-weight persistence across all layers, in order.
  void WritePacked(util::BinaryWriter* writer) const;
  Status ReadPacked(util::BinaryReader* reader);

  std::vector<Parameter*> Parameters();

  size_t in_features() const { return layers_.front().in_features(); }
  size_t out_features() const { return layers_.back().out_features(); }

 private:
  std::vector<Linear> layers_;
  std::vector<ReLU> relus_;  // relus_[i] follows layers_[i] where applicable
  bool final_activation_;
};

/// Masked mean over a set dimension: given per-element features
/// flat [B*S, H] and a mask [B, S] (1 = real element, 0 = padding), produces
/// the per-set average [B, H] over real elements. This is the Deep Sets
/// style pooling at the heart of the MSCN (§2 of the paper).
class MaskedMean {
 public:
  /// `flat` is [B*S, H]; `mask` is [B, S]. A set with no real elements
  /// yields a zero vector.
  Tensor Forward(const Tensor& flat, const Tensor& mask);
  /// dy is [B, H]; returns gradient for `flat` [B*S, H].
  Tensor Backward(const Tensor& dy);

  /// Stateless pooling (inference path): same math as Forward, no caches.
  static Tensor Pool(const Tensor& flat, const Tensor& mask);

  /// Allocation-free Pool: `out` is resized in place to [B, H]. Bit-for-bit
  /// identical to Pool.
  static void PoolInto(const Tensor& flat, const Tensor& mask, Tensor* out);

 private:
  Tensor cached_mask_;
  std::vector<float> cached_counts_;  // real elements per set
  size_t cached_h_ = 0;
};

// ---- Parameter persistence -----------------------------------------------------

/// Writes all parameters (shape + data) in order.
void WriteParameters(const std::vector<Parameter*>& params,
                     util::BinaryWriter* writer);

/// Restores parameters written by WriteParameters into an identically
/// structured parameter list; fails on shape or name mismatch.
Status ReadParameters(util::BinaryReader* reader,
                      const std::vector<Parameter*>& params);

}  // namespace ds::nn

#endif  // DS_NN_LAYERS_H_

#include "ds/nn/optimizer.h"

#include <cmath>

namespace ds::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = velocity_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      v[j] = momentum_ * v[j] - lr_ * g[j];
      w[j] += v[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace ds::nn

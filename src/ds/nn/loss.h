// Training objectives.
//
// The paper trains MSCN "with the objective of minimizing the mean q-error"
// (Moerkotte et al.'s factor between true and estimated cardinality, >= 1).
// The model's sigmoid output lives in (0,1) and is interpreted through a
// LogNormalizer: y = (log(card) - min_log) / (max_log - min_log), where the
// bounds come from the training labels ("we logarithmize and then normalize
// cardinalities using the maximum cardinality present in the training
// data"). An MSE-on-normalized-labels loss is included for ablation.

#ifndef DS_NN_LOSS_H_
#define DS_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "ds/nn/tensor.h"
#include "ds/util/serialize.h"

namespace ds::nn {

/// Maps cardinalities to/from the model's (0,1) output scale.
struct LogNormalizer {
  double min_log = 0.0;  // log(1) — the paper normalizes by the max only
  double max_log = 1.0;

  /// Fits max_log (and min_log = 0) from training cardinalities.
  static LogNormalizer Fit(const std::vector<uint64_t>& cardinalities);

  double Normalize(double cardinality) const;
  /// Inverse of Normalize; output clamped to >= 1 tuple.
  double Denormalize(double y) const;

  void Write(util::BinaryWriter* writer) const;
  static Result<LogNormalizer> Read(util::BinaryReader* reader);
};

/// Mean q-error of sigmoid outputs `y` [B,1] against true cardinalities;
/// fills `dy` (same shape) with dLoss/dy. Returns the mean q-error.
double QErrorLoss(const Tensor& y, const std::vector<double>& true_cards,
                  const LogNormalizer& norm, Tensor* dy);

/// Mean squared error in normalized-log space; fills `dy`. Returns the loss.
double MseLoss(const Tensor& y, const std::vector<double>& true_cards,
               const LogNormalizer& norm, Tensor* dy);

}  // namespace ds::nn

#endif  // DS_NN_LOSS_H_

// Tier-parameterized kernel bodies. Each tier translation unit defines
//
//   DS_TIER_NS    the tier's namespace (generic, avx2, avx2_fma, avx512)
//   DS_TIER_SIMD  hand-written vector width: 0 (portable), 256, or 512
//   DS_TIER_FMA   1 to contract multiply-add into fused FMA
//
// and then includes this file exactly once (after <immintrin.h> when
// DS_TIER_SIMD > 0). Everything here except TierOps() sits in an anonymous
// namespace: tier TUs are compiled with SIMD target flags, and any
// vague-linkage symbol they exported could be the copy the linker keeps
// for the whole binary — a baseline machine would then fault on vector
// encodings the dispatcher never selected (see kernels_dispatch.h).
//
// Numerics contract:
//   * fp32 paths at DS_TIER_SIMD 0 and 256 (no FMA) perform mul-then-add
//     per element in the same k-order as the tensor.h references, so they
//     are bit-for-bit identical to them and to each other.
//   * DS_TIER_FMA and the 512-bit tier round once per multiply-add and use
//     wider/zipped reductions; they match the others only to tolerance.
//   * int8 kernels accumulate x·q in fp32 and apply the per-output-channel
//     scale once in the bias pass: y_j = acc_j * s_j + b_j. fp16 weights
//     are converted to fp32 before the multiply (exact), so fp16 paths are
//     bit-identical across generic/avx2 too.

#if !defined(DS_TIER_NS) || !defined(DS_TIER_SIMD) || !defined(DS_TIER_FMA)
#error "define DS_TIER_NS / DS_TIER_SIMD / DS_TIER_FMA before including"
#endif

namespace ds::nn::detail {
namespace DS_TIER_NS {
namespace {

// ---- Vector helpers ----------------------------------------------------------

#if DS_TIER_SIMD >= 256
#if DS_TIER_FMA
inline __m256 MulAdd8(__m256 acc, __m256 a, __m256 b) {
  return _mm256_fmadd_ps(a, b, acc);
}
#else
inline __m256 MulAdd8(__m256 acc, __m256 a, __m256 b) {
  return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
}
#endif

// Weight-row loads, overloaded on storage format. int8 codes sign-extend
// through int32 (VPMOVSXBD) then convert; fp16 converts via VCVTPH2PS.
// Both conversions are exact, so the storage format alone decides the
// numerics, not the tier.
inline __m256 LoadW8(const float* p) { return _mm256_loadu_ps(p); }
inline __m256 LoadW8(const int8_t* p) {
  const __m128i b =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));  // 8 codes
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}
inline __m256 LoadW8(const uint16_t* p) {
  return _mm256_cvtph_ps(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}
#endif  // DS_TIER_SIMD >= 256

#if DS_TIER_SIMD >= 512
inline __m512 MulAdd16(__m512 acc, __m512 a, __m512 b) {
  return _mm512_fmadd_ps(a, b, acc);
}
inline __m512 LoadW16(const float* p) { return _mm512_loadu_ps(p); }
inline __m512 LoadW16(const int8_t* p) {
  const __m128i b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));  // 16 codes
  return _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(b));
}
inline __m512 LoadW16(const uint16_t* p) {
  return _mm512_cvtph_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}
#endif  // DS_TIER_SIMD >= 512

// ---- Scalar weight loads ------------------------------------------------------

inline float LoadW1(const float* p) { return *p; }
inline float LoadW1(const int8_t* p) { return static_cast<float>(*p); }

#if DS_TIER_SIMD == 0
// Software binary16 -> binary32 (exact: every half is representable).
// Mirrors nn::F16ToF32 (quant.cc); duplicated with internal linkage so this
// TU shares no code with SIMD-flagged TUs. quant_test pins the two
// implementations (and VCVTPH2PS) to the same mapping.
inline float HalfBitsToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1fu;
  uint32_t mant = half & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while ((mant & 0x400u) == 0);
      bits = sign | ((127u - 15u - e) << 23) | ((mant & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else {
    bits = sign | ((exp - 15u + 127u) << 23) | (mant << 13);
  }
  float out;
  __builtin_memcpy(&out, &bits, sizeof(out));
  return out;
}
inline float LoadW1(const uint16_t* p) { return HalfBitsToFloat(*p); }
#else
inline float LoadW1(const uint16_t* p) { return _cvtsh_ss(*p); }
#endif

// ---- Row primitives -----------------------------------------------------------

inline void ZeroRow(float* dst, size_t m) {
  size_t j = 0;
#if DS_TIER_SIMD >= 512
  const __m512 z16 = _mm512_setzero_ps();
  for (; j + 16 <= m; j += 16) _mm512_storeu_ps(dst + j, z16);
#endif
#if DS_TIER_SIMD >= 256
  const __m256 z8 = _mm256_setzero_ps();
  for (; j + 8 <= m; j += 8) _mm256_storeu_ps(dst + j, z8);
#endif
  for (; j < m; ++j) dst[j] = 0.0f;
}

// crow[j] += av * brow[j] for j in [0, m), brow in any storage format.
template <typename WT>
inline void AxpyRow(float av, const WT* brow, float* crow, size_t m) {
  size_t j = 0;
#if DS_TIER_SIMD >= 512
  const __m512 av16 = _mm512_set1_ps(av);
  for (; j + 16 <= m; j += 16) {
    _mm512_storeu_ps(crow + j, MulAdd16(_mm512_loadu_ps(crow + j), av16,
                                        LoadW16(brow + j)));
  }
#endif
#if DS_TIER_SIMD >= 256
  const __m256 av8 = _mm256_set1_ps(av);
#if DS_TIER_SIMD == 256
  // Double-pumped 8-wide main loop: both weight-row loads in flight.
  for (; j + 16 <= m; j += 16) {
    __m256 c0 = _mm256_loadu_ps(crow + j);
    __m256 c1 = _mm256_loadu_ps(crow + j + 8);
    c0 = MulAdd8(c0, av8, LoadW8(brow + j));
    c1 = MulAdd8(c1, av8, LoadW8(brow + j + 8));
    _mm256_storeu_ps(crow + j, c0);
    _mm256_storeu_ps(crow + j + 8, c1);
  }
#endif
  for (; j + 8 <= m; j += 8) {
    _mm256_storeu_ps(
        crow + j, MulAdd8(_mm256_loadu_ps(crow + j), av8, LoadW8(brow + j)));
  }
#endif
#if DS_TIER_SIMD == 0
  // 4-wide unroll; independent elements, so the compiler can vectorize.
  for (; j + 4 <= m; j += 4) {
    crow[j] += av * LoadW1(brow + j);
    crow[j + 1] += av * LoadW1(brow + j + 1);
    crow[j + 2] += av * LoadW1(brow + j + 2);
    crow[j + 3] += av * LoadW1(brow + j + 3);
  }
#endif
  for (; j < m; ++j) crow[j] += av * LoadW1(brow + j);
}

// crow[j] = (crow[j] + a1 * b1[j]) + a2 * b2[j] — the float sequence of two
// AxpyRow calls with both weight rows streaming concurrently. The k loops
// pair consecutive nonzeros through this to hide load latency on the
// accumulation-heavy sparse/one-hot first layers.
template <typename WT>
inline void AxpyRow2(float a1, const WT* b1, float a2, const WT* b2,
                     float* crow, size_t m) {
  size_t j = 0;
#if DS_TIER_SIMD >= 512
  const __m512 av1 = _mm512_set1_ps(a1);
  const __m512 av2 = _mm512_set1_ps(a2);
  for (; j + 16 <= m; j += 16) {
    __m512 c = _mm512_loadu_ps(crow + j);
    c = MulAdd16(c, av1, LoadW16(b1 + j));
    c = MulAdd16(c, av2, LoadW16(b2 + j));
    _mm512_storeu_ps(crow + j, c);
  }
#endif
#if DS_TIER_SIMD >= 256
  const __m256 av18 = _mm256_set1_ps(a1);
  const __m256 av28 = _mm256_set1_ps(a2);
  for (; j + 8 <= m; j += 8) {
    __m256 c = _mm256_loadu_ps(crow + j);
    c = MulAdd8(c, av18, LoadW8(b1 + j));
    c = MulAdd8(c, av28, LoadW8(b2 + j));
    _mm256_storeu_ps(crow + j, c);
  }
#endif
  for (; j < m; ++j) {
    crow[j] = (crow[j] + a1 * LoadW1(b1 + j)) + a2 * LoadW1(b2 + j);
  }
}

// crow[j] += sum_k arow[k] * b[k][j], skipping zero entries of arow and
// pairing consecutive nonzeros through AxpyRow2 (one-hot/bitmap inputs are
// mostly zero). Each pair preserves per-element add order, so this stays
// bit-exact with the plain sequential zero-skip loop.
template <typename WT>
inline void AccumulateRow(const float* arow, size_t k, const WT* bd, size_t m,
                          float* crow) {
  size_t kk = 0;
  for (;;) {
    while (kk < k && arow[kk] == 0.0f) ++kk;
    if (kk >= k) break;
    const size_t k1 = kk++;
    while (kk < k && arow[kk] == 0.0f) ++kk;
    if (kk >= k) {
      AxpyRow(arow[k1], bd + k1 * m, crow, m);
      break;
    }
    const size_t k2 = kk++;
    AxpyRow2(arow[k1], bd + k1 * m, arow[k2], bd + k2 * m, crow, m);
  }
}

// crow[j] += bias[j], then optionally relu, in one pass.
inline void BiasActRow(const float* bias, bool fuse_relu, float* crow,
                       size_t m) {
  size_t j = 0;
#if DS_TIER_SIMD >= 512
  const __m512 z16 = _mm512_setzero_ps();
  for (; j + 16 <= m; j += 16) {
    __m512 c = _mm512_add_ps(_mm512_loadu_ps(crow + j),
                             _mm512_loadu_ps(bias + j));
    if (fuse_relu) c = _mm512_max_ps(c, z16);
    _mm512_storeu_ps(crow + j, c);
  }
#endif
#if DS_TIER_SIMD >= 256
  const __m256 z8 = _mm256_setzero_ps();
  for (; j + 8 <= m; j += 8) {
    __m256 c =
        _mm256_add_ps(_mm256_loadu_ps(crow + j), _mm256_loadu_ps(bias + j));
    if (fuse_relu) c = _mm256_max_ps(c, z8);
    _mm256_storeu_ps(crow + j, c);
  }
#endif
  for (; j < m; ++j) {
    float v = crow[j] + bias[j];
    crow[j] = fuse_relu && v < 0.0f ? 0.0f : v;
  }
}

// crow[j] = crow[j] * scales[j] + bias[j] (+ relu) — the int8 epilogue:
// the whole-column dequantization applied once per output instead of once
// per weight.
inline void ScaleBiasActRow(const float* scales, const float* bias,
                            bool fuse_relu, float* crow, size_t m) {
  size_t j = 0;
#if DS_TIER_SIMD >= 512
  const __m512 z16 = _mm512_setzero_ps();
  for (; j + 16 <= m; j += 16) {
    __m512 c = MulAdd16(_mm512_loadu_ps(bias + j), _mm512_loadu_ps(crow + j),
                        _mm512_loadu_ps(scales + j));
    if (fuse_relu) c = _mm512_max_ps(c, z16);
    _mm512_storeu_ps(crow + j, c);
  }
#endif
#if DS_TIER_SIMD >= 256
  const __m256 z8 = _mm256_setzero_ps();
  for (; j + 8 <= m; j += 8) {
    __m256 c = MulAdd8(_mm256_loadu_ps(bias + j), _mm256_loadu_ps(crow + j),
                       _mm256_loadu_ps(scales + j));
    if (fuse_relu) c = _mm256_max_ps(c, z8);
    _mm256_storeu_ps(crow + j, c);
  }
#endif
  for (; j < m; ++j) {
    float v = crow[j] * scales[j] + bias[j];
    crow[j] = fuse_relu && v < 0.0f ? 0.0f : v;
  }
}

// Dot product arow · brow over k (backward pass dx = dy W^T). The vector
// reduction reassociates; the training path tolerates the rounding.
inline float DotRow(const float* arow, const float* brow, size_t k) {
  size_t kk = 0;
  float acc = 0.0f;
#if DS_TIER_SIMD >= 512
  if (k >= 16) {
    __m512 acc16 = _mm512_setzero_ps();
    for (; kk + 16 <= k; kk += 16) {
      acc16 = MulAdd16(acc16, _mm512_loadu_ps(arow + kk),
                       _mm512_loadu_ps(brow + kk));
    }
    acc = _mm512_reduce_add_ps(acc16);
  }
#elif DS_TIER_SIMD >= 256
  if (k >= 8) {
    __m256 acc8 = _mm256_setzero_ps();
    for (; kk + 8 <= k; kk += 8) {
      acc8 = MulAdd8(acc8, _mm256_loadu_ps(arow + kk),
                     _mm256_loadu_ps(brow + kk));
    }
    __m128 lo = _mm256_castps256_ps128(acc8);
    __m128 hi = _mm256_extractf128_ps(acc8, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_hadd_ps(s, s);
    s = _mm_hadd_ps(s, s);
    acc = _mm_cvtss_f32(s);
  }
#endif
  for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
  return acc;
}

// ---- Kernel bodies ------------------------------------------------------------

// Fused linear over any weight storage. `scales` non-null selects the int8
// epilogue (scale applied once per output); null uses the plain bias pass.
template <typename WT>
inline void LinearBody(const float* xd, const WT* wd, const float* scales,
                       const float* bias, bool fuse_relu, float* yd, size_t n,
                       size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    float* yrow = yd + i * m;
    ZeroRow(yrow, m);
    AccumulateRow(xd + i * k, k, wd, m, yrow);
    if (scales != nullptr) {
      ScaleBiasActRow(scales, bias, fuse_relu, yrow, m);
    } else {
      BiasActRow(bias, fuse_relu, yrow, m);
    }
  }
}

template <typename WT>
inline void SparseLinearBody(const uint32_t* offs, const uint32_t* cols,
                             const float* vals, size_t n, const WT* wd,
                             const float* scales, const float* bias,
                             bool fuse_relu, float* yd, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    float* yrow = yd + i * m;
    ZeroRow(yrow, m);
    uint32_t e = offs[i];
    const uint32_t end = offs[i + 1];
    for (; e + 2 <= end; e += 2) {
      AxpyRow2(vals[e], wd + static_cast<size_t>(cols[e]) * m, vals[e + 1],
               wd + static_cast<size_t>(cols[e + 1]) * m, yrow, m);
    }
    if (e < end) {
      AxpyRow(vals[e], wd + static_cast<size_t>(cols[e]) * m, yrow, m);
    }
    if (scales != nullptr) {
      ScaleBiasActRow(scales, bias, fuse_relu, yrow, m);
    } else {
      BiasActRow(bias, fuse_relu, yrow, m);
    }
  }
}

// ---- KernelOps entry points ---------------------------------------------------

void MatMulOp(const float* a, const float* b, float* c, size_t n, size_t k,
              size_t m) {
  for (size_t i = 0; i < n; ++i) {
    float* crow = c + i * m;
    ZeroRow(crow, m);
    AccumulateRow(a + i * k, k, b, m, crow);
  }
}

void MatMulTBOp(const float* a, const float* b, float* c, size_t n, size_t k,
                size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    for (size_t j = 0; j < m; ++j) crow[j] = DotRow(arow, b + j * k, k);
  }
}

void MatMulTAAccOp(const float* a, const float* b, float* c, size_t n,
                   size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * m;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      AxpyRow(av, brow, c + kk * m, m);
    }
  }
}

void LinearOp(const float* x, const float* w, const float* bias,
              bool fuse_relu, float* y, size_t n, size_t k, size_t m) {
  LinearBody(x, w, nullptr, bias, fuse_relu, y, n, k, m);
}

void SparseLinearOp(const uint32_t* offs, const uint32_t* cols,
                    const float* vals, size_t n, const float* w,
                    const float* bias, bool fuse_relu, float* y, size_t m) {
  SparseLinearBody(offs, cols, vals, n, w, nullptr, bias, fuse_relu, y, m);
}

void LinearI8Op(const float* x, const int8_t* q, const float* scales,
                const float* bias, bool fuse_relu, float* y, size_t n,
                size_t k, size_t m) {
  LinearBody(x, q, scales, bias, fuse_relu, y, n, k, m);
}

void SparseLinearI8Op(const uint32_t* offs, const uint32_t* cols,
                      const float* vals, size_t n, const int8_t* q,
                      const float* scales, const float* bias, bool fuse_relu,
                      float* y, size_t m) {
  SparseLinearBody(offs, cols, vals, n, q, scales, bias, fuse_relu, y, m);
}

void LinearF16Op(const float* x, const uint16_t* h, const float* bias,
                 bool fuse_relu, float* y, size_t n, size_t k, size_t m) {
  LinearBody(x, h, nullptr, bias, fuse_relu, y, n, k, m);
}

void SparseLinearF16Op(const uint32_t* offs, const uint32_t* cols,
                       const float* vals, size_t n, const uint16_t* h,
                       const float* bias, bool fuse_relu, float* y,
                       size_t m) {
  SparseLinearBody(offs, cols, vals, n, h, nullptr, bias, fuse_relu, y, m);
}

}  // namespace

/// The tier's dispatch table; the only symbol a tier TU exports.
const KernelOps* TierOps() {
  static const KernelOps ops = {
      MatMulOp,         MatMulTBOp,        MatMulTAAccOp,
      LinearOp,         SparseLinearOp,    LinearI8Op,
      SparseLinearI8Op, LinearF16Op,       SparseLinearF16Op,
  };
  return &ops;
}

}  // namespace DS_TIER_NS
}  // namespace ds::nn::detail

#include "ds/mscn/trainer.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include <memory>

#include "ds/nn/optimizer.h"
#include "ds/obs/trace.h"
#include "ds/util/parallel.h"
#include "ds/util/random.h"
#include "ds/util/timer.h"

namespace ds::mscn {

namespace {

// One data-parallel worker: a full model replica whose parameters are
// refreshed from the master before each sharded step and whose gradients
// are reduced back afterwards.
struct Replica {
  explicit Replica(const ModelConfig& config) : model(config) {
    params = model.Parameters();
  }
  MscnModel model;
  std::vector<nn::Parameter*> params;
  double loss = 0;          // shard loss scaled by shard/batch size
  double busy_seconds = 0;  // wall time inside the shard step
};

// One data-parallel training step: shards `batch_idx` contiguously across
// the replicas, runs forward/backward per shard concurrently (each shard's
// dy is scaled by shard/batch size so the summed gradients equal the
// full-batch mean gradient), then reduces gradients into the master
// parameters in replica order — deterministic for a fixed thread count.
// Returns the full-batch mean loss; master grads must be zero on entry
// (true after optimizer.ZeroGrad()).
double ShardedBatchGradients(const std::vector<nn::Parameter*>& master_params,
                             std::vector<std::unique_ptr<Replica>>& replicas,
                             const Dataset& dataset, const FeatureSpace& space,
                             const std::vector<size_t>& batch_idx,
                             const nn::LogNormalizer& normalizer,
                             LossKind loss_kind, double* busy_seconds_sum) {
  const size_t total = batch_idx.size();
  const size_t t_count = std::min(replicas.size(), total);
  util::ParallelFor(t_count, t_count, [&](size_t t) {
    util::WallTimer timer;
    Replica& rep = *replicas[t];
    const size_t lo = t * total / t_count;
    const size_t hi = (t + 1) * total / t_count;
    // Refresh the replica from the master (vec assignment reuses capacity).
    for (size_t pi = 0; pi < master_params.size(); ++pi) {
      rep.params[pi]->value.vec() = master_params[pi]->value.vec();
    }
    std::vector<size_t> shard(batch_idx.begin() + lo, batch_idx.begin() + hi);
    Batch sb = MakeBatch(dataset, shard, space);
    nn::Tensor y = rep.model.Forward(sb);
    nn::Tensor dy(y.shape());
    double loss = loss_kind == LossKind::kQError
                      ? nn::QErrorLoss(y, sb.labels, normalizer, &dy)
                      : nn::MseLoss(y, sb.labels, normalizer, &dy);
    const float scale =
        static_cast<float>(hi - lo) / static_cast<float>(total);
    for (float& v : dy.vec()) v *= scale;
    rep.model.Backward(dy);
    rep.loss = loss * static_cast<double>(scale);
    rep.busy_seconds = timer.ElapsedSeconds();
  });
  double loss_sum = 0;
  for (size_t t = 0; t < t_count; ++t) {
    Replica& rep = *replicas[t];
    for (size_t pi = 0; pi < master_params.size(); ++pi) {
      nn::Axpy(1.0f, rep.params[pi]->grad, &master_params[pi]->grad);
      rep.params[pi]->grad.Zero();
    }
    loss_sum += rep.loss;
    *busy_seconds_sum += rep.busy_seconds;
  }
  return loss_sum;
}

}  // namespace

std::string TrainingReport::ToCsv() const {
  std::ostringstream os;
  os << "epoch,train_loss,val_mean_q,val_median_q,seconds\n";
  for (const auto& e : epochs) {
    os << e.epoch << "," << e.train_loss << "," << e.validation_mean_q << ","
       << e.validation_median_q << "," << e.seconds << "\n";
  }
  return os.str();
}

Result<TrainingReport> Trainer::Train(MscnModel* model, const Dataset& dataset,
                                      const FeatureSpace& space) const {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  if (options_.batch_size == 0 || options_.epochs == 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  util::Pcg32 rng(options_.seed);

  // Split train/validation.
  std::vector<size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(&indices);
  size_t num_val = static_cast<size_t>(
      options_.validation_fraction * static_cast<double>(dataset.size()));
  num_val = std::min(num_val, dataset.size() - 1);
  std::vector<size_t> val_idx(indices.begin(), indices.begin() + num_val);
  std::vector<size_t> train_idx(indices.begin() + num_val, indices.end());

  TrainingReport report;
  // "We logarithmize and then normalize cardinalities using the maximum
  // cardinality present in the training data."
  {
    std::vector<uint64_t> train_cards;
    train_cards.reserve(train_idx.size());
    for (size_t i : train_idx) {
      train_cards.push_back(static_cast<uint64_t>(dataset.labels[i]));
    }
    report.normalizer = nn::LogNormalizer::Fit(train_cards);
  }

  std::vector<nn::Parameter*> master_params = model->Parameters();
  nn::Adam optimizer(master_params, options_.learning_rate);
  util::WallTimer total_timer;

  // Data-parallel workers (threads > 1): one model replica per worker,
  // created once and reused across every minibatch.
  const size_t num_threads = std::max<size_t>(options_.threads, 1);
  std::vector<std::unique_ptr<Replica>> replicas;
  for (size_t t = 0; num_threads > 1 && t < num_threads; ++t) {
    replicas.push_back(std::make_unique<Replica>(model->config()));
  }

  double busy_seconds_sum = 0;   // worker busy time, for efficiency export
  double epoch_wall_seconds = 0; // parallel-section wall time

  for (size_t epoch = 1; epoch <= options_.epochs; ++epoch) {
    obs::Span epoch_span("train_epoch", epoch);
    util::WallTimer epoch_timer;
    rng.Shuffle(&train_idx);
    double loss_sum = 0;
    size_t num_batches = 0;
    busy_seconds_sum = 0;
    for (size_t off = 0; off < train_idx.size();
         off += options_.batch_size) {
      const size_t end = std::min(off + options_.batch_size, train_idx.size());
      std::vector<size_t> batch_idx(train_idx.begin() + off,
                                    train_idx.begin() + end);
      double loss;
      if (num_threads <= 1) {
        Batch batch = MakeBatch(dataset, batch_idx, space);
        nn::Tensor y = model->Forward(batch);
        nn::Tensor dy(y.shape());
        if (options_.loss == LossKind::kQError) {
          loss = nn::QErrorLoss(y, batch.labels, report.normalizer, &dy);
        } else {
          loss = nn::MseLoss(y, batch.labels, report.normalizer, &dy);
        }
        model->Backward(dy);
      } else {
        loss = ShardedBatchGradients(master_params, replicas, dataset, space,
                                     batch_idx, report.normalizer,
                                     options_.loss, &busy_seconds_sum);
      }
      optimizer.Step();
      optimizer.ZeroGrad();
      loss_sum += loss;
      ++num_batches;
    }
    epoch_wall_seconds = epoch_timer.ElapsedSeconds();

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(num_batches);
    if (!val_idx.empty()) {
      auto preds = PredictIndices(model, dataset, space, report.normalizer,
                                  val_idx, options_.batch_size);
      std::vector<double> q;
      q.reserve(val_idx.size());
      for (size_t i = 0; i < val_idx.size(); ++i) {
        q.push_back(util::QError(dataset.labels[val_idx[i]], preds[i]));
      }
      stats.validation_mean_q = util::Mean(q);
      stats.validation_median_q = util::Median(q);
    }
    stats.seconds = epoch_timer.ElapsedSeconds();
    stats.examples_per_sec =
        stats.seconds > 0
            ? static_cast<double>(train_idx.size()) / stats.seconds
            : 0.0;
    if (options_.obs_registry != nullptr) {
      obs::Registry* r = options_.obs_registry;
      r->GetCounter("ds_train_epochs_total", "Completed training epochs")
          ->Add(1);
      r->GetCounter("ds_train_examples_total",
                    "Training examples consumed across epochs")
          ->Add(train_idx.size());
      r->GetGauge("ds_train_loss", "Mean training loss, last epoch")
          ->Set(stats.train_loss);
      r->GetGauge("ds_train_val_mean_q",
                  "Validation mean q-error, last epoch")
          ->Set(stats.validation_mean_q);
      r->GetGauge("ds_train_val_median_q",
                  "Validation median q-error, last epoch")
          ->Set(stats.validation_median_q);
      r->GetHistogram("ds_train_epoch_ms", "Milliseconds per epoch")
          ->Observe(static_cast<uint64_t>(stats.seconds * 1e3));
      r->GetGauge("ds_train_threads",
                  "Data-parallel training worker threads")
          ->Set(static_cast<double>(num_threads));
      if (num_threads > 1 && epoch_wall_seconds > 0) {
        r->GetGauge("ds_train_parallel_efficiency",
                    "Worker busy seconds / (threads x epoch wall seconds), "
                    "last epoch")
            ->Set(busy_seconds_sum /
                  (static_cast<double>(num_threads) * epoch_wall_seconds));
      }
    }
    if (options_.on_epoch) options_.on_epoch(stats);
    report.epochs.push_back(stats);
  }
  report.total_seconds = total_timer.ElapsedSeconds();
  return report;
}

std::vector<double> Trainer::PredictIndices(
    MscnModel* model, const Dataset& dataset, const FeatureSpace& space,
    const nn::LogNormalizer& normalizer, const std::vector<size_t>& indices,
    size_t batch_size) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (size_t off = 0; off < indices.size(); off += batch_size) {
    const size_t end = std::min(off + batch_size, indices.size());
    std::vector<size_t> batch_idx(indices.begin() + off,
                                  indices.begin() + end);
    Batch batch = MakeBatch(dataset, batch_idx, space);
    nn::Tensor y = model->Forward(batch);
    for (size_t i = 0; i < batch_idx.size(); ++i) {
      out.push_back(normalizer.Denormalize(static_cast<double>(y.at(i))));
    }
  }
  return out;
}

std::vector<double> Trainer::Predict(MscnModel* model, const Dataset& dataset,
                                     const FeatureSpace& space,
                                     const nn::LogNormalizer& normalizer,
                                     size_t batch_size) {
  std::vector<size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  return PredictIndices(model, dataset, space, normalizer, indices,
                        batch_size);
}

std::vector<double> Trainer::QErrors(const std::vector<double>& predictions,
                                     const Dataset& dataset) {
  DS_CHECK_EQ(predictions.size(), dataset.size());
  std::vector<double> q;
  q.reserve(predictions.size());
  for (size_t i = 0; i < predictions.size(); ++i) {
    q.push_back(util::QError(dataset.labels[i], predictions[i]));
  }
  return q;
}

}  // namespace ds::mscn

#include "ds/mscn/trainer.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "ds/nn/optimizer.h"
#include "ds/obs/trace.h"
#include "ds/util/random.h"
#include "ds/util/timer.h"

namespace ds::mscn {

std::string TrainingReport::ToCsv() const {
  std::ostringstream os;
  os << "epoch,train_loss,val_mean_q,val_median_q,seconds\n";
  for (const auto& e : epochs) {
    os << e.epoch << "," << e.train_loss << "," << e.validation_mean_q << ","
       << e.validation_median_q << "," << e.seconds << "\n";
  }
  return os.str();
}

Result<TrainingReport> Trainer::Train(MscnModel* model, const Dataset& dataset,
                                      const FeatureSpace& space) const {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  if (options_.batch_size == 0 || options_.epochs == 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  util::Pcg32 rng(options_.seed);

  // Split train/validation.
  std::vector<size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(&indices);
  size_t num_val = static_cast<size_t>(
      options_.validation_fraction * static_cast<double>(dataset.size()));
  num_val = std::min(num_val, dataset.size() - 1);
  std::vector<size_t> val_idx(indices.begin(), indices.begin() + num_val);
  std::vector<size_t> train_idx(indices.begin() + num_val, indices.end());

  TrainingReport report;
  // "We logarithmize and then normalize cardinalities using the maximum
  // cardinality present in the training data."
  {
    std::vector<uint64_t> train_cards;
    train_cards.reserve(train_idx.size());
    for (size_t i : train_idx) {
      train_cards.push_back(static_cast<uint64_t>(dataset.labels[i]));
    }
    report.normalizer = nn::LogNormalizer::Fit(train_cards);
  }

  nn::Adam optimizer(model->Parameters(), options_.learning_rate);
  util::WallTimer total_timer;

  for (size_t epoch = 1; epoch <= options_.epochs; ++epoch) {
    obs::Span epoch_span("train_epoch", epoch);
    util::WallTimer epoch_timer;
    rng.Shuffle(&train_idx);
    double loss_sum = 0;
    size_t num_batches = 0;
    for (size_t off = 0; off < train_idx.size();
         off += options_.batch_size) {
      const size_t end = std::min(off + options_.batch_size, train_idx.size());
      std::vector<size_t> batch_idx(train_idx.begin() + off,
                                    train_idx.begin() + end);
      Batch batch = MakeBatch(dataset, batch_idx, space);
      nn::Tensor y = model->Forward(batch);
      nn::Tensor dy(y.shape());
      double loss;
      if (options_.loss == LossKind::kQError) {
        loss = nn::QErrorLoss(y, batch.labels, report.normalizer, &dy);
      } else {
        loss = nn::MseLoss(y, batch.labels, report.normalizer, &dy);
      }
      model->Backward(dy);
      optimizer.Step();
      optimizer.ZeroGrad();
      loss_sum += loss;
      ++num_batches;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(num_batches);
    if (!val_idx.empty()) {
      auto preds = PredictIndices(model, dataset, space, report.normalizer,
                                  val_idx, options_.batch_size);
      std::vector<double> q;
      q.reserve(val_idx.size());
      for (size_t i = 0; i < val_idx.size(); ++i) {
        q.push_back(util::QError(dataset.labels[val_idx[i]], preds[i]));
      }
      stats.validation_mean_q = util::Mean(q);
      stats.validation_median_q = util::Median(q);
    }
    stats.seconds = epoch_timer.ElapsedSeconds();
    stats.examples_per_sec =
        stats.seconds > 0
            ? static_cast<double>(train_idx.size()) / stats.seconds
            : 0.0;
    if (options_.obs_registry != nullptr) {
      obs::Registry* r = options_.obs_registry;
      r->GetCounter("ds_train_epochs_total", "Completed training epochs")
          ->Add(1);
      r->GetCounter("ds_train_examples_total",
                    "Training examples consumed across epochs")
          ->Add(train_idx.size());
      r->GetGauge("ds_train_loss", "Mean training loss, last epoch")
          ->Set(stats.train_loss);
      r->GetGauge("ds_train_val_mean_q",
                  "Validation mean q-error, last epoch")
          ->Set(stats.validation_mean_q);
      r->GetGauge("ds_train_val_median_q",
                  "Validation median q-error, last epoch")
          ->Set(stats.validation_median_q);
      r->GetHistogram("ds_train_epoch_ms", "Milliseconds per epoch")
          ->Observe(static_cast<uint64_t>(stats.seconds * 1e3));
    }
    if (options_.on_epoch) options_.on_epoch(stats);
    report.epochs.push_back(stats);
  }
  report.total_seconds = total_timer.ElapsedSeconds();
  return report;
}

std::vector<double> Trainer::PredictIndices(
    MscnModel* model, const Dataset& dataset, const FeatureSpace& space,
    const nn::LogNormalizer& normalizer, const std::vector<size_t>& indices,
    size_t batch_size) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (size_t off = 0; off < indices.size(); off += batch_size) {
    const size_t end = std::min(off + batch_size, indices.size());
    std::vector<size_t> batch_idx(indices.begin() + off,
                                  indices.begin() + end);
    Batch batch = MakeBatch(dataset, batch_idx, space);
    nn::Tensor y = model->Forward(batch);
    for (size_t i = 0; i < batch_idx.size(); ++i) {
      out.push_back(normalizer.Denormalize(static_cast<double>(y.at(i))));
    }
  }
  return out;
}

std::vector<double> Trainer::Predict(MscnModel* model, const Dataset& dataset,
                                     const FeatureSpace& space,
                                     const nn::LogNormalizer& normalizer,
                                     size_t batch_size) {
  std::vector<size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  return PredictIndices(model, dataset, space, normalizer, indices,
                        batch_size);
}

std::vector<double> Trainer::QErrors(const std::vector<double>& predictions,
                                     const Dataset& dataset) {
  DS_CHECK_EQ(predictions.size(), dataset.size());
  std::vector<double> q;
  q.reserve(predictions.size());
  for (size_t i = 0; i < predictions.size(); ++i) {
    q.push_back(util::QError(dataset.labels[i], predictions[i]));
  }
  return q;
}

}  // namespace ds::mscn

#include "ds/mscn/logger.h"

#include <sstream>

namespace ds::mscn {

Result<TrainingLogger> TrainingLogger::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open training log: " + path);
  }
  std::fputs("epoch,train_loss,val_mean_q,val_median_q,seconds\n", f);
  std::fflush(f);
  return TrainingLogger(f);
}

void TrainingLogger::LogEpoch(const EpochStats& stats) {
  if (file_ == nullptr) return;
  std::fprintf(file_, "%zu,%.6f,%.6f,%.6f,%.3f\n", stats.epoch,
               stats.train_loss, stats.validation_mean_q,
               stats.validation_median_q, stats.seconds);
  std::fflush(file_);
}

std::string FormatEpochRecord(const EpochStats& stats) {
  char line[192];
  std::snprintf(line, sizeof(line),
                "epoch=%zu train_loss=%.6f val_mean_q=%.4f "
                "val_median_q=%.4f examples_per_sec=%.1f seconds=%.3f",
                stats.epoch, stats.train_loss, stats.validation_mean_q,
                stats.validation_median_q, stats.examples_per_sec,
                stats.seconds);
  return std::string(line);
}

std::string DescribeArchitecture(const ModelConfig& config) {
  const size_t h = config.hidden_units;
  auto mlp2 = [h](size_t in) {
    // Linear(in, h) + Linear(h, h): weights + biases.
    return in * h + h + h * h + h;
  };
  const size_t table_params = mlp2(config.table_dim);
  const size_t join_params = mlp2(config.join_dim);
  const size_t pred_params = mlp2(config.pred_dim);
  const size_t out_params = 3 * h * h + h + h * 1 + 1;

  std::ostringstream os;
  os << "MSCN (multi-set convolutional network)\n"
     << "  table module:     [" << config.table_dim << " -> " << h << " -> "
     << h << "]  ReLU, shared over set elements   (" << table_params
     << " params)\n"
     << "  join module:      [" << config.join_dim << " -> " << h << " -> "
     << h << "]  ReLU, shared over set elements   (" << join_params
     << " params)\n"
     << "  predicate module: [" << config.pred_dim << " -> " << h << " -> "
     << h << "]  ReLU, shared over set elements   (" << pred_params
     << " params)\n"
     << "  per-set masked mean pooling -> concat [" << 3 * h << "]\n"
     << "  output MLP:       [" << 3 * h << " -> " << h
     << " -> 1]  ReLU, sigmoid head               (" << out_params
     << " params)\n"
     << "  total parameters: "
     << table_params + join_params + pred_params + out_params << "\n";
  return os.str();
}

}  // namespace ds::mscn

// Training loop — step 4 of Figure 1a.
//
// Mini-batch training with Adam, minimizing the mean q-error (or,
// for ablation, MSE in normalized-log space). Reports per-epoch training
// loss and validation q-error; the demo's TensorBoard monitoring maps to
// the progress callback plus an optional CSV training log.

#ifndef DS_MSCN_TRAINER_H_
#define DS_MSCN_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "ds/mscn/dataset.h"
#include "ds/mscn/model.h"
#include "ds/nn/loss.h"
#include "ds/obs/metrics.h"
#include "ds/util/stats.h"

namespace ds::mscn {

enum class LossKind : uint8_t {
  kQError = 0,  // the paper's objective
  kMse = 1,     // ablation
};

struct EpochStats {
  size_t epoch = 0;
  double train_loss = 0;        // mean loss over training batches
  double validation_mean_q = 0; // mean q-error on the validation split
  double validation_median_q = 0;
  double seconds = 0;           // wall time of this epoch
  double examples_per_sec = 0;  // training examples / seconds
};

struct TrainingReport {
  std::vector<EpochStats> epochs;
  nn::LogNormalizer normalizer;
  double total_seconds = 0;

  /// Writes "epoch,train_loss,val_mean_q,val_median_q,seconds" rows — the
  /// machine-readable training curve (the demo's training monitor).
  std::string ToCsv() const;
};

struct TrainerOptions {
  size_t epochs = 30;       // paper: "25 epochs are usually enough"
  size_t batch_size = 128;
  float learning_rate = 1e-3f;
  LossKind loss = LossKind::kQError;
  /// Fraction of the dataset held out for validation (0 disables).
  double validation_fraction = 0.1;
  uint64_t seed = 99;
  /// Data-parallel worker threads per minibatch. Each worker holds a full
  /// model replica; a minibatch is sharded contiguously across workers, each
  /// computes gradients on its shard (scaled by shard/batch size so the sum
  /// equals the full-batch mean gradient), gradients are reduced in worker
  /// order, and one optimizer step is applied. `threads == 1` runs the exact
  /// sequential path (bit-identical losses); more threads reproduce the same
  /// gradients up to float summation order.
  size_t threads = 1;
  /// Called after every epoch (for progress UIs).
  std::function<void(const EpochStats&)> on_epoch;
  /// When set, the loop exports per-epoch instruments into this registry:
  /// ds_train_epochs_total / ds_train_examples_total counters,
  /// ds_train_loss / ds_train_val_{mean,median}_q gauges, and a
  /// ds_train_epoch_ms histogram. Null disables (no obs dependency on the
  /// hot path beyond one branch per epoch).
  obs::Registry* obs_registry = nullptr;
};

class Trainer {
 public:
  explicit Trainer(TrainerOptions options) : options_(std::move(options)) {}

  /// Trains `model` in place on `dataset`; fits the label normalizer on the
  /// training split. The dataset must be non-empty.
  Result<TrainingReport> Train(MscnModel* model, const Dataset& dataset,
                               const FeatureSpace& space) const;

  /// Predicted cardinalities for every query of `dataset` (no training).
  static std::vector<double> Predict(MscnModel* model, const Dataset& dataset,
                                     const FeatureSpace& space,
                                     const nn::LogNormalizer& normalizer,
                                     size_t batch_size = 128);

  /// Predicted cardinalities for a subset of `dataset`.
  static std::vector<double> PredictIndices(
      MscnModel* model, const Dataset& dataset, const FeatureSpace& space,
      const nn::LogNormalizer& normalizer, const std::vector<size_t>& indices,
      size_t batch_size = 128);

  /// Per-query q-errors of predictions against the dataset labels.
  static std::vector<double> QErrors(const std::vector<double>& predictions,
                                     const Dataset& dataset);

 private:
  TrainerOptions options_;
};

}  // namespace ds::mscn

#endif  // DS_MSCN_TRAINER_H_

#include "ds/mscn/model.h"

namespace ds::mscn {

void ModelConfig::Write(util::BinaryWriter* w) const {
  w->WriteU64(table_dim);
  w->WriteU64(join_dim);
  w->WriteU64(pred_dim);
  w->WriteU64(hidden_units);
}

Result<ModelConfig> ModelConfig::Read(util::BinaryReader* r) {
  ModelConfig c;
  uint64_t v = 0;
  DS_RETURN_NOT_OK(r->ReadU64(&v));
  c.table_dim = v;
  DS_RETURN_NOT_OK(r->ReadU64(&v));
  c.join_dim = v;
  DS_RETURN_NOT_OK(r->ReadU64(&v));
  c.pred_dim = v;
  DS_RETURN_NOT_OK(r->ReadU64(&v));
  c.hidden_units = v;
  if (c.table_dim == 0 || c.join_dim == 0 || c.pred_dim == 0 ||
      c.hidden_units == 0) {
    return Status::ParseError("invalid model config");
  }
  // Plausibility caps: MscnModel's constructor sizes its weight tensors
  // straight from these dims, so a bit-flipped file must fail here as a
  // ParseError rather than as a multi-GiB allocation (or bad_alloc abort)
  // inside the constructor. Real sketches are orders of magnitude smaller
  // (dims in the tens to hundreds, hidden units <= a few hundred).
  constexpr uint64_t kMaxDim = uint64_t{1} << 20;
  constexpr uint64_t kMaxWeightCells = uint64_t{1} << 26;
  const uint64_t dims[] = {c.table_dim, c.join_dim, c.pred_dim};
  for (uint64_t d : dims) {
    if (d > kMaxDim || c.hidden_units > kMaxDim ||
        d * c.hidden_units > kMaxWeightCells ||
        c.hidden_units * c.hidden_units > kMaxWeightCells) {
      return Status::ParseError("implausible model dimensions in sketch file");
    }
  }
  return c;
}

MscnModel::MscnModel(const ModelConfig& config)
    : config_(config),
      table_mlp_("table", {config.table_dim, config.hidden_units,
                           config.hidden_units},
                 /*final_activation=*/true),
      join_mlp_("join",
                {config.join_dim, config.hidden_units, config.hidden_units},
                /*final_activation=*/true),
      pred_mlp_("pred",
                {config.pred_dim, config.hidden_units, config.hidden_units},
                /*final_activation=*/true),
      out_mlp_("out", {3 * config.hidden_units, config.hidden_units, 1},
               /*final_activation=*/false) {
  DS_CHECK_GT(config.table_dim, 0u);
  DS_CHECK_GT(config.join_dim, 0u);
  DS_CHECK_GT(config.pred_dim, 0u);
  DS_CHECK_GT(config.hidden_units, 0u);
}

void MscnModel::Initialize(util::Pcg32* rng) {
  table_mlp_.Initialize(rng);
  join_mlp_.Initialize(rng);
  pred_mlp_.Initialize(rng);
  out_mlp_.Initialize(rng);
}

nn::Tensor MscnModel::Forward(const Batch& batch) {
  const size_t h = config_.hidden_units;
  const size_t b = batch.batch_size();

  // Per-element shared MLPs on the flattened sets, then masked averaging.
  nn::Tensor t = table_pool_.Forward(table_mlp_.Forward(batch.tables),
                                     batch.table_mask);
  nn::Tensor j =
      join_pool_.Forward(join_mlp_.Forward(batch.joins), batch.join_mask);
  nn::Tensor p = pred_pool_.Forward(pred_mlp_.Forward(batch.predicates),
                                    batch.predicate_mask);

  // Concatenate the three pooled representations.
  nn::Tensor concat({b, 3 * h});
  for (size_t i = 0; i < b; ++i) {
    float* row = concat.data() + i * 3 * h;
    std::copy(t.data() + i * h, t.data() + (i + 1) * h, row);
    std::copy(j.data() + i * h, j.data() + (i + 1) * h, row + h);
    std::copy(p.data() + i * h, p.data() + (i + 1) * h, row + 2 * h);
  }

  return out_sigmoid_.Forward(out_mlp_.Forward(concat));
}

nn::Tensor MscnModel::Infer(const Batch& batch) const {
  const size_t h = config_.hidden_units;
  const size_t b = batch.batch_size();

  nn::Tensor t = nn::MaskedMean::Pool(table_mlp_.Infer(batch.tables),
                                      batch.table_mask);
  nn::Tensor j =
      nn::MaskedMean::Pool(join_mlp_.Infer(batch.joins), batch.join_mask);
  nn::Tensor p = nn::MaskedMean::Pool(pred_mlp_.Infer(batch.predicates),
                                      batch.predicate_mask);

  nn::Tensor concat({b, 3 * h});
  for (size_t i = 0; i < b; ++i) {
    float* row = concat.data() + i * 3 * h;
    std::copy(t.data() + i * h, t.data() + (i + 1) * h, row);
    std::copy(j.data() + i * h, j.data() + (i + 1) * h, row + h);
    std::copy(p.data() + i * h, p.data() + (i + 1) * h, row + 2 * h);
  }

  nn::Tensor y = out_mlp_.Infer(concat);
  nn::Sigmoid::ApplyInPlace(&y);
  return y;
}

const nn::Tensor* MscnModel::InferTail(
    const nn::Tensor& tflat, const nn::Tensor& jflat, const nn::Tensor& pflat,
    const nn::Tensor& tmask, const nn::Tensor& jmask, const nn::Tensor& pmask,
    nn::Workspace* ws) const {
  const size_t h = config_.hidden_units;
  const size_t b = tmask.dim(0);

  nn::Tensor* t = ws->Acquire();
  nn::Tensor* j = ws->Acquire();
  nn::Tensor* p = ws->Acquire();
  nn::MaskedMean::PoolInto(tflat, tmask, t);
  nn::MaskedMean::PoolInto(jflat, jmask, j);
  nn::MaskedMean::PoolInto(pflat, pmask, p);

  nn::Tensor* concat = ws->Acquire();
  concat->ResizeInPlace({b, 3 * h});
  for (size_t i = 0; i < b; ++i) {
    float* row = concat->data() + i * 3 * h;
    std::copy(t->data() + i * h, t->data() + (i + 1) * h, row);
    std::copy(j->data() + i * h, j->data() + (i + 1) * h, row + h);
    std::copy(p->data() + i * h, p->data() + (i + 1) * h, row + 2 * h);
  }

  nn::Tensor* y = out_mlp_.InferInto(*concat, ws);
  nn::Sigmoid::ApplyInPlace(y);
  return y;
}

const nn::Tensor* MscnModel::InferInto(const Batch& batch,
                                       nn::Workspace* ws) const {
  const nn::Tensor* tf = table_mlp_.InferInto(batch.tables, ws);
  const nn::Tensor* jf = join_mlp_.InferInto(batch.joins, ws);
  const nn::Tensor* pf = pred_mlp_.InferInto(batch.predicates, ws);
  return InferTail(*tf, *jf, *pf, batch.table_mask, batch.join_mask,
                   batch.predicate_mask, ws);
}

const nn::Tensor* MscnModel::InferSparse(const SparseBatch& batch,
                                         nn::Workspace* ws) const {
  const nn::Tensor* tf = table_mlp_.InferSparseInto(batch.tables, ws);
  const nn::Tensor* jf = join_mlp_.InferSparseInto(batch.joins, ws);
  const nn::Tensor* pf = pred_mlp_.InferSparseInto(batch.predicates, ws);
  return InferTail(*tf, *jf, *pf, batch.table_mask, batch.join_mask,
                   batch.predicate_mask, ws);
}

void MscnModel::Backward(const nn::Tensor& dy) {
  const size_t h = config_.hidden_units;
  nn::Tensor dconcat = out_mlp_.Backward(out_sigmoid_.Backward(dy));
  const size_t b = dconcat.dim(0);

  nn::Tensor dt({b, h}), dj({b, h}), dp({b, h});
  for (size_t i = 0; i < b; ++i) {
    const float* row = dconcat.data() + i * 3 * h;
    std::copy(row, row + h, dt.data() + i * h);
    std::copy(row + h, row + 2 * h, dj.data() + i * h);
    std::copy(row + 2 * h, row + 3 * h, dp.data() + i * h);
  }

  table_mlp_.Backward(table_pool_.Backward(dt));
  join_mlp_.Backward(join_pool_.Backward(dj));
  pred_mlp_.Backward(pred_pool_.Backward(dp));
}

std::vector<nn::Parameter*> MscnModel::Parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Mlp* mlp : {&table_mlp_, &join_mlp_, &pred_mlp_, &out_mlp_}) {
    for (nn::Parameter* p : mlp->Parameters()) out.push_back(p);
  }
  return out;
}

size_t MscnModel::NumParameters() const {
  size_t n = 0;
  for (const nn::Mlp* mlp : {&table_mlp_, &join_mlp_, &pred_mlp_, &out_mlp_}) {
    for (nn::Parameter* p : const_cast<nn::Mlp*>(mlp)->Parameters()) {
      n += p->value.size();
    }
  }
  return n;
}

void MscnModel::Pack(nn::QuantMode mode) {
  table_mlp_.Pack(mode);
  join_mlp_.Pack(mode);
  pred_mlp_.Pack(mode);
  out_mlp_.Pack(mode);
}

void MscnModel::WritePacked(util::BinaryWriter* w) const {
  table_mlp_.WritePacked(w);
  join_mlp_.WritePacked(w);
  pred_mlp_.WritePacked(w);
  out_mlp_.WritePacked(w);
}

Status MscnModel::ReadPacked(util::BinaryReader* r) {
  DS_RETURN_NOT_OK(table_mlp_.ReadPacked(r));
  DS_RETURN_NOT_OK(join_mlp_.ReadPacked(r));
  DS_RETURN_NOT_OK(pred_mlp_.ReadPacked(r));
  DS_RETURN_NOT_OK(out_mlp_.ReadPacked(r));
  return Status::OK();
}

void MscnModel::Write(util::BinaryWriter* w) {
  config_.Write(w);
  nn::WriteParameters(Parameters(), w);
}

Result<MscnModel> MscnModel::Read(util::BinaryReader* r) {
  DS_ASSIGN_OR_RETURN(ModelConfig config, ModelConfig::Read(r));
  MscnModel model(config);
  DS_RETURN_NOT_OK(nn::ReadParameters(r, model.Parameters()));
  return model;
}

}  // namespace ds::mscn

#include "ds/mscn/featurizer.h"

#include <algorithm>

#include "ds/util/contract.h"

namespace ds::mscn {

std::string FeatureSpace::JoinKey(const workload::JoinEdge& edge) {
  std::string a = edge.left_table + "." + edge.left_column;
  std::string b = edge.right_table + "." + edge.right_column;
  if (b < a) std::swap(a, b);
  return a + "=" + b;
}

Result<FeatureSpace> FeatureSpace::Create(
    const storage::Catalog& catalog, const std::vector<std::string>& tables,
    size_t sample_size) {
  FeatureSpace fs;
  fs.sample_size_ = sample_size;
  std::vector<std::string> names = tables.empty() ? catalog.table_names() : tables;
  for (const auto& name : names) {
    DS_ASSIGN_OR_RETURN(const storage::Table* table, catalog.GetTable(name));
    fs.table_index_.emplace(name, fs.table_names_.size());
    fs.table_names_.push_back(name);
    // Every column is a potential predicate target; record its range.
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const storage::Column& col = table->column(c);
      const std::string key = name + "." + col.name();
      fs.column_index_.emplace(key, fs.column_keys_.size());
      fs.column_keys_.push_back(key);
      fs.column_min_.push_back(col.MinNumeric());
      fs.column_max_.push_back(col.MaxNumeric());
    }
  }
  // Joins: every FK edge fully inside the table subset, canonicalized.
  for (const auto& fk : catalog.foreign_keys()) {
    if (fs.table_index_.count(fk.fk_table) == 0 ||
        fs.table_index_.count(fk.pk_table) == 0) {
      continue;
    }
    workload::JoinEdge edge{fk.fk_table, fk.fk_column, fk.pk_table,
                            fk.pk_column};
    const std::string key = JoinKey(edge);
    if (fs.join_index_.count(key) == 0) {
      fs.join_index_.emplace(key, fs.join_keys_.size());
      fs.join_keys_.push_back(key);
    }
  }
  return fs;
}

Result<size_t> FeatureSpace::TableIndex(const std::string& table) const {
  auto it = table_index_.find(table);
  if (it == table_index_.end()) {
    return Status::InvalidArgument("table '" + table +
                                   "' is outside this sketch's feature space");
  }
  return it->second;
}

Result<QueryFeatures> FeatureSpace::Featurize(
    const workload::QuerySpec& spec,
    const std::vector<std::vector<uint8_t>>& bitmaps) const {
  if (!bitmaps.empty() && bitmaps.size() != spec.tables.size()) {
    return Status::InvalidArgument("bitmap count does not match table count");
  }
  QueryFeatures out;

  // Table set: one-hot + bitmap (zero-padded to sample_size).
  for (size_t i = 0; i < spec.tables.size(); ++i) {
    DS_ASSIGN_OR_RETURN(size_t idx, TableIndex(spec.tables[i]));
    std::vector<float> feat(table_dim(), 0.0f);
    feat[idx] = 1.0f;
    if (!bitmaps.empty()) {
      const auto& bm = bitmaps[i];
      const size_t n = std::min(bm.size(), sample_size_);
      for (size_t j = 0; j < n; ++j) {
        feat[table_names_.size() + j] = bm[j] ? 1.0f : 0.0f;
      }
    }
    out.tables.push_back(std::move(feat));
  }

  // Join set: one-hot per edge.
  for (const auto& join : spec.joins) {
    auto it = join_index_.find(JoinKey(join));
    if (it == join_index_.end()) {
      return Status::InvalidArgument(
          "join " + join.ToString() +
          " is outside this sketch's feature space");
    }
    std::vector<float> feat(join_dim(), 0.0f);
    feat[it->second] = 1.0f;
    out.joins.push_back(std::move(feat));
  }

  // Predicate set: column one-hot ⊕ op one-hot ⊕ normalized literal.
  for (const auto& pred : spec.predicates) {
    const std::string key = pred.table + "." + pred.column;
    auto it = column_index_.find(key);
    if (it == column_index_.end()) {
      return Status::InvalidArgument(
          "column " + key + " is outside this sketch's feature space");
    }
    // The literal must resolve against the sketch's feature space, not the
    // live database, so normalization only uses stored min/max. Categorical
    // strings still need the dictionary; FeaturizeWithSamples and the
    // training path both have access to columns sharing it. Here the literal
    // is expected to be numeric already or resolvable via the predicate's
    // CellValue (int64/double); strings reach us only through
    // ResolvePredicateValue at a higher layer.
    double value = 0;
    if (const auto* i = std::get_if<int64_t>(&pred.literal)) {
      value = static_cast<double>(*i);
    } else if (const auto* d = std::get_if<double>(&pred.literal)) {
      value = *d;
    } else {
      return Status::InvalidArgument(
          "string literal must be resolved to its dictionary code before "
          "featurization: " +
          pred.ToString());
    }
    const size_t c = it->second;
    const double lo = column_min_[c], hi = column_max_[c];
    const double norm =
        hi > lo ? std::clamp((value - lo) / (hi - lo), 0.0, 1.0) : 0.5;
    std::vector<float> feat(pred_dim(), 0.0f);
    feat[c] = 1.0f;
    feat[column_keys_.size() + static_cast<size_t>(pred.op)] = 1.0f;
    feat[column_keys_.size() + 3] = static_cast<float>(norm);
    out.predicates.push_back(std::move(feat));
  }
  return out;
}

bool HasStringLiterals(const workload::QuerySpec& spec) {
  for (const auto& pred : spec.predicates) {
    if (std::holds_alternative<std::string>(pred.literal)) return true;
  }
  return false;
}

Status ResolveStringLiteralsInPlace(workload::QuerySpec* spec,
                                    const est::SampleSet& samples) {
  for (auto& pred : spec->predicates) {
    if (!std::holds_alternative<std::string>(pred.literal)) continue;
    DS_ASSIGN_OR_RETURN(const est::TableSample* ts, samples.Get(pred.table));
    DS_ASSIGN_OR_RETURN(const storage::Column* col,
                        ts->rows->GetColumn(pred.column));
    if (col->dict() == nullptr) {
      return Status::InvalidArgument("string literal on non-categorical " +
                                     pred.ToString());
    }
    DS_ASSIGN_OR_RETURN(
        int64_t code, col->dict()->Lookup(std::get<std::string>(pred.literal)));
    pred.literal = code;
  }
  return Status::OK();
}

Result<workload::QuerySpec> ResolveStringLiterals(
    const workload::QuerySpec& spec, const est::SampleSet& samples) {
  workload::QuerySpec resolved = spec;
  DS_RETURN_NOT_OK(ResolveStringLiteralsInPlace(&resolved, samples));
  return resolved;
}

Status FeatureSpace::FeaturizeSparse(const workload::QuerySpec& spec,
                                     const est::SampleSet& samples,
                                     bool use_bitmaps,
                                     FeaturizeScratch* scratch,
                                     SparseQueryFeatures* out) const {
  // Resolve string literals through a reused scratch copy; the common case
  // (numeric-only predicates) featurizes straight from `spec`.
  const workload::QuerySpec* q = &spec;
  if (HasStringLiterals(spec)) {
    scratch->resolved = spec;
    DS_RETURN_NOT_OK(ResolveStringLiteralsInPlace(&scratch->resolved, samples));
    q = &scratch->resolved;
  }
  out->Clear(table_dim(), join_dim(), pred_dim());

  // Table set: one-hot at the table index, then bitmap ones. The one-hot
  // index is always below the bitmap base, so columns stay strictly
  // increasing; zero bitmap bytes are simply not emitted (the dense kernel
  // skips zeros, so the accumulation order is identical).
  for (const auto& tname : q->tables) {
    DS_ASSIGN_OR_RETURN(size_t idx, TableIndex(tname));
    out->tables.Push(static_cast<uint32_t>(idx), 1.0f);
    if (use_bitmaps) {
      DS_RETURN_NOT_OK(samples.BitmapInto(tname, q->predicates,
                                          &scratch->bound, &scratch->bitmap));
      const size_t n = std::min(scratch->bitmap.size(), sample_size_);
      // Bulk-emit the set bits: count, resize once, then fill — hundreds
      // of entries per table row, so per-entry push_back bounds checks
      // show up in the serving featurize profile.
      size_t count = 0;
      for (size_t j = 0; j < n; ++j) count += scratch->bitmap[j] != 0;
      const uint32_t base = static_cast<uint32_t>(table_names_.size());
      const size_t start = out->tables.cols.size();
      out->tables.cols.resize(start + count);
      out->tables.vals.resize(start + count, 1.0f);
      uint32_t* cp = out->tables.cols.data() + start;
      for (size_t j = 0; j < n; ++j) {
        if (scratch->bitmap[j]) *cp++ = base + static_cast<uint32_t>(j);
      }
      // This path writes cols directly (bypassing Push and its checks), so
      // re-assert the CSR invariants it must uphold: every reserved slot
      // filled, and the first bitmap column above the one-hot index keeps
      // the row strictly increasing (bitmap columns ascend with j).
      DS_DCHECK(cp == out->tables.cols.data() + start + count,
                "bitmap bulk-emit filled %zu of %zu reserved CSR slots",
                static_cast<size_t>(cp - (out->tables.cols.data() + start)),
                count);
      DS_DCHECK(base > static_cast<uint32_t>(idx),
                "bitmap base %u must lie above table one-hot index %zu",
                base, idx);
    }
    out->tables.EndRow();
  }

  // Join set: a single one. The canonical key is rebuilt in scratch strings
  // (JoinKey allocates fresh ones).
  for (const auto& join : q->joins) {
    auto assign_side = [](std::string* s, const std::string& t,
                          const std::string& c) {
      s->clear();
      *s += t;
      *s += '.';
      *s += c;
    };
    assign_side(&scratch->side_a, join.left_table, join.left_column);
    assign_side(&scratch->side_b, join.right_table, join.right_column);
    const std::string* a = &scratch->side_a;
    const std::string* b = &scratch->side_b;
    if (*b < *a) std::swap(a, b);
    scratch->key.clear();
    scratch->key += *a;
    scratch->key += '=';
    scratch->key += *b;
    auto it = join_index_.find(scratch->key);
    if (it == join_index_.end()) {
      return Status::InvalidArgument(
          "join " + join.ToString() +
          " is outside this sketch's feature space");
    }
    out->joins.Push(static_cast<uint32_t>(it->second), 1.0f);
    out->joins.EndRow();
  }

  // Predicate set: column one-hot, op one-hot, literal (skipped when it
  // normalizes to exactly zero — the dense path's zero-skip equivalent).
  for (const auto& pred : q->predicates) {
    scratch->key.clear();
    scratch->key += pred.table;
    scratch->key += '.';
    scratch->key += pred.column;
    auto it = column_index_.find(scratch->key);
    if (it == column_index_.end()) {
      return Status::InvalidArgument("column " + scratch->key +
                                     " is outside this sketch's feature space");
    }
    double value = 0;
    if (const auto* i = std::get_if<int64_t>(&pred.literal)) {
      value = static_cast<double>(*i);
    } else if (const auto* d = std::get_if<double>(&pred.literal)) {
      value = *d;
    } else {
      return Status::InvalidArgument(
          "string literal must be resolved to its dictionary code before "
          "featurization: " +
          pred.ToString());
    }
    const size_t c = it->second;
    const double lo = column_min_[c], hi = column_max_[c];
    const double norm =
        hi > lo ? std::clamp((value - lo) / (hi - lo), 0.0, 1.0) : 0.5;
    out->predicates.Push(static_cast<uint32_t>(c), 1.0f);
    out->predicates.Push(
        static_cast<uint32_t>(column_keys_.size() + static_cast<size_t>(pred.op)),
        1.0f);
    const float normf = static_cast<float>(norm);
    if (normf != 0.0f) {
      out->predicates.Push(static_cast<uint32_t>(column_keys_.size() + 3),
                           normf);
    }
    out->predicates.EndRow();
  }
  // Featurization postcondition: one CSR row per set element — the padded
  // batch packer (deep_sketch.cc) indexes rows positionally.
  DS_ENSURE(out->tables.rows() == q->tables.size() &&
                out->joins.rows() == q->joins.size() &&
                out->predicates.rows() == q->predicates.size(),
            "featurized %zu/%zu/%zu rows for %zu tables, %zu joins, %zu "
            "predicates",
            out->tables.rows(), out->joins.rows(), out->predicates.rows(),
            q->tables.size(), q->joins.size(), q->predicates.size());
  return Status::OK();
}

Result<QueryFeatures> FeatureSpace::FeaturizeWithSamples(
    const workload::QuerySpec& spec, const est::SampleSet& samples) const {
  DS_ASSIGN_OR_RETURN(workload::QuerySpec resolved,
                      ResolveStringLiterals(spec, samples));
  std::vector<std::vector<uint8_t>> bitmaps;
  bitmaps.reserve(resolved.tables.size());
  for (const auto& table : resolved.tables) {
    DS_ASSIGN_OR_RETURN(auto bitmap,
                        samples.Bitmap(table, resolved.predicates));
    bitmaps.push_back(std::move(bitmap));
  }
  return Featurize(resolved, bitmaps);
}

void FeatureSpace::Write(util::BinaryWriter* w) const {
  w->WriteStringVector(table_names_);
  w->WriteStringVector(join_keys_);
  w->WriteStringVector(column_keys_);
  w->WritePodVector(column_min_);
  w->WritePodVector(column_max_);
  w->WriteU64(sample_size_);
}

Result<FeatureSpace> FeatureSpace::Read(util::BinaryReader* r) {
  FeatureSpace fs;
  DS_RETURN_NOT_OK(r->ReadStringVector(&fs.table_names_));
  DS_RETURN_NOT_OK(r->ReadStringVector(&fs.join_keys_));
  DS_RETURN_NOT_OK(r->ReadStringVector(&fs.column_keys_));
  DS_RETURN_NOT_OK(r->ReadPodVector(&fs.column_min_));
  DS_RETURN_NOT_OK(r->ReadPodVector(&fs.column_max_));
  uint64_t ss = 0;
  DS_RETURN_NOT_OK(r->ReadU64(&ss));
  fs.sample_size_ = ss;
  if (fs.column_min_.size() != fs.column_keys_.size() ||
      fs.column_max_.size() != fs.column_keys_.size()) {
    return Status::ParseError("inconsistent feature space file");
  }
  for (size_t i = 0; i < fs.table_names_.size(); ++i) {
    fs.table_index_.emplace(fs.table_names_[i], i);
  }
  for (size_t i = 0; i < fs.join_keys_.size(); ++i) {
    fs.join_index_.emplace(fs.join_keys_[i], i);
  }
  for (size_t i = 0; i < fs.column_keys_.size(); ++i) {
    fs.column_index_.emplace(fs.column_keys_[i], i);
  }
  return fs;
}

}  // namespace ds::mscn

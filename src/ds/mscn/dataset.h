// Training datasets and padded mini-batches for the MSCN model.
//
// The three feature sets of a query have variable sizes (1-N tables, 0-N
// joins, 0-N predicates). A batch pads each set to the batch maximum and
// carries 0/1 masks so the masked set-average only pools real elements.

#ifndef DS_MSCN_DATASET_H_
#define DS_MSCN_DATASET_H_

#include <vector>

#include "ds/mscn/featurizer.h"
#include "ds/nn/tensor.h"
#include "ds/workload/labeler.h"

namespace ds::mscn {

/// Featurized queries with their true cardinalities.
struct Dataset {
  std::vector<QueryFeatures> features;
  std::vector<double> labels;  // true cardinalities

  size_t size() const { return features.size(); }

  /// Featurizes a labeled workload. Each query's string literals are
  /// resolved through the samples; its stored bitmaps (computed by the
  /// labeler against the same samples) feed the table features.
  static Result<Dataset> Build(
      const FeatureSpace& space, const est::SampleSet& samples,
      const std::vector<workload::LabeledQuery>& workload);
};

/// A padded mini-batch: flat [B*S, dim] feature tensors plus [B, S] masks.
struct Batch {
  nn::Tensor tables, table_mask;
  nn::Tensor joins, join_mask;
  nn::Tensor predicates, predicate_mask;
  std::vector<double> labels;

  size_t batch_size() const { return table_mask.dim(0); }
};

/// Assembles the batch for `indices` of `dataset`. Set sizes are padded to
/// the per-batch maximum (at least 1 so tensor shapes stay valid).
Batch MakeBatch(const Dataset& dataset, const std::vector<size_t>& indices,
                const FeatureSpace& space);

/// A padded mini-batch with CSR feature rows: B*S sparse rows per set
/// (empty rows pad; pooling ignores them via the masks) plus dense [B, S]
/// masks. Designed for reuse — packing into a warm SparseBatch allocates
/// nothing.
struct SparseBatch {
  nn::SparseRows tables, joins, predicates;
  nn::Tensor table_mask, join_mask, predicate_mask;

  size_t batch_size() const { return table_mask.dim(0); }
};

/// Packs per-query sparse features into `out`, padding each set to the
/// per-batch maximum (at least 1) with empty rows.
void PackSparseBatch(const std::vector<const SparseQueryFeatures*>& queries,
                     const FeatureSpace& space, SparseBatch* out);

}  // namespace ds::mscn

#endif  // DS_MSCN_DATASET_H_

// Query featurization for the MSCN model (§2 of the paper):
//
//   "Based on the training data, we enumerate tables, columns, joins, and
//    predicate types (=, <, and >) and represent them as unique one-hot
//    vectors. We represent each literal as a value in [0,1], normalized
//    using the minimum and maximum values of the respective column."
//
// A query becomes three sets of feature vectors:
//   table element:     [table one-hot | sample bitmap]
//   join element:      [join one-hot]
//   predicate element: [column one-hot | op one-hot | normalized literal]
//
// The FeatureSpace fixes the enumerations and column ranges; it is part of
// a sketch's persistent state so that featurization is identical at training
// and estimation time.

#ifndef DS_MSCN_FEATURIZER_H_
#define DS_MSCN_FEATURIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ds/est/sample.h"
#include "ds/nn/kernels.h"
#include "ds/storage/catalog.h"
#include "ds/util/serialize.h"
#include "ds/workload/labeler.h"
#include "ds/workload/query_spec.h"

namespace ds::mscn {

/// One featurized query: three sets of equal-width feature vectors.
struct QueryFeatures {
  std::vector<std::vector<float>> tables;      // each of width table_dim
  std::vector<std::vector<float>> joins;       // each of width join_dim
  std::vector<std::vector<float>> predicates;  // each of width pred_dim
};

/// One featurized query in CSR form: one sparse row per set element. The
/// feature rows are overwhelmingly zero (one-hots plus a sample bitmap), so
/// the serving path stores only the nonzeros and feeds them to the sparse
/// first-layer kernel. ToDense() of each member reproduces the dense
/// QueryFeatures rows exactly.
struct SparseQueryFeatures {
  nn::SparseRows tables;      // width table_dim
  nn::SparseRows joins;       // width join_dim
  nn::SparseRows predicates;  // width pred_dim

  /// Resets all three row sets (keeping capacity) for the given widths.
  void Clear(size_t table_dim, size_t join_dim, size_t pred_dim) {
    tables.Clear(table_dim);
    joins.Clear(join_dim);
    predicates.Clear(pred_dim);
  }
};

/// Reusable scratch for the allocation-free featurization path. All members
/// keep their capacity across queries, so a warm scratch featurizes without
/// touching the allocator. Not thread-safe; use one per thread.
struct FeaturizeScratch {
  workload::QuerySpec resolved;             // string-literal resolution copy
  std::vector<exec::BoundPredicate> bound;  // predicate binding scratch
  std::vector<uint8_t> bitmap;              // per-table bitmap scratch
  std::string key;                          // column/join key lookup scratch
  std::string side_a, side_b;               // join-key side scratch
};

class FeatureSpace {
 public:
  /// Enumerates tables, joins (FK edges among `tables`), predicate columns,
  /// and records column min/max for literal normalization. `sample_size` is
  /// the bitmap width (tables one-hot + bitmap = table element width).
  /// `tables` empty means all catalog tables.
  static Result<FeatureSpace> Create(const storage::Catalog& catalog,
                                     const std::vector<std::string>& tables,
                                     size_t sample_size);

  size_t table_dim() const { return table_names_.size() + sample_size_; }
  size_t join_dim() const { return std::max<size_t>(join_keys_.size(), 1); }
  size_t pred_dim() const { return column_keys_.size() + 3 + 1; }
  size_t sample_size() const { return sample_size_; }

  const std::vector<std::string>& table_names() const { return table_names_; }
  size_t num_joins() const { return join_keys_.size(); }
  size_t num_columns() const { return column_keys_.size(); }

  /// Featurizes a query given its per-table sample bitmaps (parallel to
  /// spec.tables, padded/truncated to sample_size automatically). Fails on
  /// tables/joins/columns outside this feature space, or on literals that
  /// cannot be resolved (unknown categorical strings surface as NotFound).
  Result<QueryFeatures> Featurize(
      const workload::QuerySpec& spec,
      const std::vector<std::vector<uint8_t>>& bitmaps) const;

  /// Featurizes with bitmaps computed against `samples` (estimation path,
  /// Figure 1b: the sketch evaluates base-table selections on its own
  /// materialized samples).
  Result<QueryFeatures> FeaturizeWithSamples(
      const workload::QuerySpec& spec, const est::SampleSet& samples) const;

  /// Sparse, allocation-free counterpart of FeaturizeWithSamples: resolves
  /// string literals (via a scratch copy only when the query has any),
  /// evaluates per-table bitmaps when `use_bitmaps`, and emits CSR rows into
  /// `out` with strictly increasing column indices and no explicit zeros —
  /// so ToDense() matches the dense path bit-for-bit. With a warm scratch
  /// and output, featurizing touches no allocator.
  Status FeaturizeSparse(const workload::QuerySpec& spec,
                         const est::SampleSet& samples, bool use_bitmaps,
                         FeaturizeScratch* scratch,
                         SparseQueryFeatures* out) const;

  void Write(util::BinaryWriter* writer) const;
  static Result<FeatureSpace> Read(util::BinaryReader* reader);

 private:
  Result<size_t> TableIndex(const std::string& table) const;

  std::vector<std::string> table_names_;
  std::unordered_map<std::string, size_t> table_index_;

  // Canonical join key "t1.c1=t2.c2" (lexicographically ordered sides).
  static std::string JoinKey(const workload::JoinEdge& edge);
  std::vector<std::string> join_keys_;
  std::unordered_map<std::string, size_t> join_index_;

  // Column key "table.column" with normalization range.
  std::vector<std::string> column_keys_;
  std::unordered_map<std::string, size_t> column_index_;
  std::vector<double> column_min_;
  std::vector<double> column_max_;

  size_t sample_size_ = 0;
};

/// Rewrites string literals in `spec` to their dictionary codes using the
/// sample columns (which share the base tables' dictionaries). Returns
/// NotFound for strings absent from the data — callers decide whether that
/// is an error (training) or an "estimate is zero" signal (ad-hoc queries).
Result<workload::QuerySpec> ResolveStringLiterals(
    const workload::QuerySpec& spec, const est::SampleSet& samples);

/// True if any predicate literal is still an unresolved string. Queries
/// without string literals can skip the resolution copy entirely.
bool HasStringLiterals(const workload::QuerySpec& spec);

/// In-place variant of ResolveStringLiterals for caller-owned specs (the
/// zero-allocation path rewrites a reused scratch copy).
Status ResolveStringLiteralsInPlace(workload::QuerySpec* spec,
                                    const est::SampleSet& samples);

}  // namespace ds::mscn

#endif  // DS_MSCN_FEATURIZER_H_

// Training-progress logging — the demo's TensorBoard substitute.
//
// The demo "uses TensorBoard to visualize the neural network architecture
// and the training phase". Here, a TrainingLogger streams one CSV row per
// epoch to a file (flushed immediately so an external plotter can tail it)
// and can describe the model architecture in text.

#ifndef DS_MSCN_LOGGER_H_
#define DS_MSCN_LOGGER_H_

#include <cstdio>
#include <functional>
#include <string>

#include "ds/mscn/model.h"
#include "ds/mscn/trainer.h"
#include "ds/util/status.h"

namespace ds::mscn {

/// Streams per-epoch training statistics to a CSV file.
class TrainingLogger {
 public:
  /// Opens (truncates) `path` and writes the header row.
  static Result<TrainingLogger> Open(const std::string& path);

  TrainingLogger(TrainingLogger&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  TrainingLogger& operator=(TrainingLogger&& other) noexcept {
    if (this != &other) {
      Close();
      file_ = other.file_;
      other.file_ = nullptr;
    }
    return *this;
  }
  TrainingLogger(const TrainingLogger&) = delete;
  TrainingLogger& operator=(const TrainingLogger&) = delete;
  ~TrainingLogger() { Close(); }

  /// Appends one epoch row and flushes.
  void LogEpoch(const EpochStats& stats);

  /// An on_epoch callback bound to this logger (for TrainerOptions).
  std::function<void(const EpochStats&)> Callback() {
    return [this](const EpochStats& e) { LogEpoch(e); };
  }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  explicit TrainingLogger(std::FILE* file) : file_(file) {}
  std::FILE* file_ = nullptr;
};

/// A text rendering of the MSCN architecture (layer sizes and parameter
/// counts) — the "visualize the neural network architecture" half of the
/// demo's TensorBoard usage.
std::string DescribeArchitecture(const ModelConfig& config);

/// One machine-parseable key=value line per epoch (no trailing newline):
///   epoch=3 train_loss=1.204 val_mean_q=9.81 val_median_q=2.77
///   examples_per_sec=5124.0 seconds=0.195
/// This is what `dsctl train` prints by default; grep/awk-friendly, and
/// stable in field order.
std::string FormatEpochRecord(const EpochStats& stats);

}  // namespace ds::mscn

#endif  // DS_MSCN_LOGGER_H_

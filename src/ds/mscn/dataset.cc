#include "ds/mscn/dataset.h"

#include <algorithm>

namespace ds::mscn {

Result<Dataset> Dataset::Build(
    const FeatureSpace& space, const est::SampleSet& samples,
    const std::vector<workload::LabeledQuery>& workload) {
  Dataset ds;
  ds.features.reserve(workload.size());
  ds.labels.reserve(workload.size());
  for (const auto& lq : workload) {
    DS_ASSIGN_OR_RETURN(workload::QuerySpec resolved,
                        ResolveStringLiterals(lq.spec, samples));
    DS_ASSIGN_OR_RETURN(QueryFeatures qf,
                        space.Featurize(resolved, lq.bitmaps));
    ds.features.push_back(std::move(qf));
    ds.labels.push_back(static_cast<double>(lq.cardinality));
  }
  return ds;
}

namespace {

// Fills `flat` [B*S, dim] and `mask` [B, S] from per-query element lists.
void PackSet(const std::vector<const std::vector<std::vector<float>>*>& sets,
             size_t dim, nn::Tensor* flat, nn::Tensor* mask) {
  const size_t b = sets.size();
  size_t s = 1;
  for (const auto* set : sets) s = std::max(s, set->size());
  *flat = nn::Tensor({b * s, dim});
  *mask = nn::Tensor({b, s});
  for (size_t i = 0; i < b; ++i) {
    const auto& elements = *sets[i];
    for (size_t j = 0; j < elements.size(); ++j) {
      DS_CHECK_EQ(elements[j].size(), dim);
      std::copy(elements[j].begin(), elements[j].end(),
                flat->data() + (i * s + j) * dim);
      mask->at(i, j) = 1.0f;
    }
  }
}

}  // namespace

Batch MakeBatch(const Dataset& dataset, const std::vector<size_t>& indices,
                const FeatureSpace& space) {
  Batch batch;
  std::vector<const std::vector<std::vector<float>>*> tables, joins, preds;
  tables.reserve(indices.size());
  joins.reserve(indices.size());
  preds.reserve(indices.size());
  batch.labels.reserve(indices.size());
  for (size_t idx : indices) {
    const QueryFeatures& qf = dataset.features[idx];
    tables.push_back(&qf.tables);
    joins.push_back(&qf.joins);
    preds.push_back(&qf.predicates);
    batch.labels.push_back(dataset.labels[idx]);
  }
  PackSet(tables, space.table_dim(), &batch.tables, &batch.table_mask);
  PackSet(joins, space.join_dim(), &batch.joins, &batch.join_mask);
  PackSet(preds, space.pred_dim(), &batch.predicates, &batch.predicate_mask);
  return batch;
}

namespace {

// Sparse counterpart of PackSet: concatenates each query's CSR rows, padded
// to the per-batch max with empty rows.
void PackSparseSet(const std::vector<const SparseQueryFeatures*>& queries,
                   nn::SparseRows SparseQueryFeatures::* member, size_t dim,
                   nn::SparseRows* flat, nn::Tensor* mask) {
  const size_t b = queries.size();
  size_t s = 1;
  for (const auto* q : queries) s = std::max(s, (q->*member).rows());
  flat->Clear(dim);
  mask->ResizeInPlace({b, s});
  mask->Zero();
  for (size_t i = 0; i < b; ++i) {
    const nn::SparseRows& src = queries[i]->*member;
    const size_t n = src.rows();
    for (size_t j = 0; j < n; ++j) {
      flat->AppendRowFrom(src, j);
      mask->at(i, j) = 1.0f;
    }
    for (size_t j = n; j < s; ++j) flat->EndRow();
  }
}

}  // namespace

void PackSparseBatch(const std::vector<const SparseQueryFeatures*>& queries,
                     const FeatureSpace& space, SparseBatch* out) {
  PackSparseSet(queries, &SparseQueryFeatures::tables, space.table_dim(),
                &out->tables, &out->table_mask);
  PackSparseSet(queries, &SparseQueryFeatures::joins, space.join_dim(),
                &out->joins, &out->join_mask);
  PackSparseSet(queries, &SparseQueryFeatures::predicates, space.pred_dim(),
                &out->predicates, &out->predicate_mask);
}

}  // namespace ds::mscn

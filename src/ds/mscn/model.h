// The multi-set convolutional network (MSCN).
//
// Architecture (paper §2): "For each set, it has a separate module,
// comprised of one fully-connected multi-layer perceptron per set element
// with shared parameters. We average module outputs, concatenate them, and
// feed them into a final output MLP, which captures correlations between
// sets and outputs a cardinality estimate."
//
//   table set  -> MLP_t (shared over elements) -> masked mean ┐
//   join set   -> MLP_j                        -> masked mean ┼ concat -> MLP_out -> sigmoid
//   pred set   -> MLP_p                        -> masked mean ┘
//
// The sigmoid output is a normalized log-cardinality (see nn::LogNormalizer).

#ifndef DS_MSCN_MODEL_H_
#define DS_MSCN_MODEL_H_

#include <vector>

#include "ds/mscn/dataset.h"
#include "ds/nn/layers.h"
#include "ds/util/random.h"
#include "ds/util/serialize.h"

namespace ds::mscn {

struct ModelConfig {
  size_t table_dim = 0;  // from FeatureSpace
  size_t join_dim = 0;
  size_t pred_dim = 0;
  /// Width of every hidden layer and of each set's pooled representation.
  size_t hidden_units = 64;

  void Write(util::BinaryWriter* writer) const;
  static Result<ModelConfig> Read(util::BinaryReader* reader);
};

class MscnModel {
 public:
  explicit MscnModel(const ModelConfig& config);

  void Initialize(util::Pcg32* rng);

  /// Forward pass over a padded batch; returns sigmoid outputs [B, 1].
  /// Caches activations for Backward — training only, not thread-safe.
  nn::Tensor Forward(const Batch& batch);

  /// Backpropagates dLoss/dOutput [B, 1]; gradients accumulate in the
  /// parameters. Must follow a Forward on the same batch.
  void Backward(const nn::Tensor& dy);

  /// Inference-only forward: identical outputs to Forward but touches no
  /// mutable state, so concurrent calls on a shared model are safe once
  /// training is done. This is the serving hot path (ds::serve).
  nn::Tensor Infer(const Batch& batch) const;

  /// Workspace-backed inference through the fused kernels. Bit-for-bit
  /// identical to Infer; all intermediates live in `ws`, so a warm workspace
  /// makes the pass allocation-free. The returned tensor points into `ws`
  /// and is valid until ws->Reset(). One workspace per thread.
  const nn::Tensor* InferInto(const Batch& batch, nn::Workspace* ws) const;

  /// Same, with CSR feature rows feeding the first layer of each set-MLP
  /// (the serving path: featurized one-hot rows are overwhelmingly zero).
  const nn::Tensor* InferSparse(const SparseBatch& batch,
                                nn::Workspace* ws) const;

  std::vector<nn::Parameter*> Parameters();
  size_t NumParameters() const;

  const ModelConfig& config() const { return config_; }

  /// Packs (kInt8/kFp16) or unpacks (kFp32) every Linear's weights for the
  /// inference paths; the fp32 parameters stay untouched (training and the
  /// parity gates keep reading them). Pack after training — optimizer
  /// steps do not refresh packed copies.
  void Pack(nn::QuantMode mode);
  nn::QuantMode quant_mode() const { return table_mlp_.quant_mode(); }

  /// Serializes config + weights.
  void Write(util::BinaryWriter* writer);
  static Result<MscnModel> Read(util::BinaryReader* reader);

  /// Packed-weight section (sketch format v2): always writes one record
  /// per Linear (empty kFp32 records when unpacked).
  void WritePacked(util::BinaryWriter* writer) const;
  Status ReadPacked(util::BinaryReader* reader);

 private:
  /// Shared tail of the workspace inference paths: pool the three flattened
  /// set activations, concatenate, output MLP, sigmoid.
  const nn::Tensor* InferTail(const nn::Tensor& tflat, const nn::Tensor& jflat,
                              const nn::Tensor& pflat, const nn::Tensor& tmask,
                              const nn::Tensor& jmask, const nn::Tensor& pmask,
                              nn::Workspace* ws) const;

  ModelConfig config_;
  nn::Mlp table_mlp_;
  nn::Mlp join_mlp_;
  nn::Mlp pred_mlp_;
  nn::MaskedMean table_pool_;
  nn::MaskedMean join_pool_;
  nn::MaskedMean pred_pool_;
  nn::Mlp out_mlp_;
  nn::Sigmoid out_sigmoid_;
};

}  // namespace ds::mscn

#endif  // DS_MSCN_MODEL_H_

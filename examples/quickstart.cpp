// Quickstart: create a Deep Sketch on the synthetic IMDb, monitor training,
// estimate ad-hoc SQL queries, and compare against the baselines and the
// ground truth — the end-to-end flow of Figure 1.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "ds/datagen/imdb.h"
#include "ds/est/hyper.h"
#include "ds/est/postgres.h"
#include "ds/est/truth.h"
#include "ds/sketch/deep_sketch.h"
#include "ds/util/string_util.h"
#include "ds/util/timer.h"

using namespace ds;

int main() {
  // 1. A database. (The demo uses IMDb; we generate a correlated synthetic
  //    IMDb of the same schema — see DESIGN.md.)
  std::printf("Generating synthetic IMDb...\n");
  datagen::ImdbOptions imdb;
  imdb.num_titles = 8000;
  auto catalog = datagen::GenerateImdb(imdb);
  if (!catalog.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  const storage::Catalog& db = **catalog;
  for (const auto* table : db.tables()) {
    std::printf("  %-18s %8zu rows\n", table->name().c_str(),
                table->num_rows());
  }

  // 2. Define and train a Deep Sketch (Figure 1a).
  sketch::SketchConfig config;
  config.tables = {"title", "movie_keyword", "keyword"};
  config.num_samples = 128;
  config.num_training_queries = 6000;
  config.num_epochs = 20;
  config.hidden_units = 64;
  config.seed = 7;

  sketch::TrainingMonitor monitor;
  monitor.on_labeling_progress = [](size_t done, size_t total) {
    if (done % 1000 == 0 || done == total) {
      std::printf("  labeled %zu/%zu training queries\r", done, total);
      std::fflush(stdout);
    }
  };
  monitor.on_epoch = [](const mscn::EpochStats& e) {
    std::printf("\n  epoch %2zu  train-loss %7.2f  val mean-q %6.2f  "
                "val median-q %5.2f  (%.1fs)",
                e.epoch, e.train_loss, e.validation_mean_q,
                e.validation_median_q, e.seconds);
  };

  std::printf("Training a sketch on {title, movie_keyword, keyword}...\n");
  util::WallTimer timer;
  auto trained = sketch::DeepSketch::Train(db, config, &monitor);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  sketch::DeepSketch& sketch = *trained;
  std::printf("\nTrained in %.1fs; %zu model parameters; sketch size %s\n",
              timer.ElapsedSeconds(), sketch.num_model_parameters(),
              util::HumanBytes(sketch.SerializedSize()).c_str());

  // 3. Estimate ad-hoc SQL (Figure 1b) and compare with the baselines.
  est::TrueCardinality truth(&db);
  est::PostgresEstimator postgres(&db);
  auto samples = est::SampleSet::Build(db, config.num_samples, /*seed=*/123);
  est::HyperEstimator hyper(&db, &*samples);

  const char* queries[] = {
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2010;",
      "SELECT COUNT(*) FROM title t, movie_keyword mk "
      "WHERE mk.movie_id = t.id AND t.production_year = 2015;",
      "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k "
      "WHERE mk.movie_id = t.id AND mk.keyword_id = k.id "
      "AND k.keyword = 'artificial-intelligence' "
      "AND t.production_year > 2000;",
      // The same count with the keyword name resolved to its key (id 4),
      // as the demo backend does: now the movie_keyword sample bitmap
      // carries the keyword's popularity and the estimate sharpens.
      "SELECT COUNT(*) FROM title t, movie_keyword mk "
      "WHERE mk.movie_id = t.id AND mk.keyword_id = 4 "
      "AND t.production_year > 2000;",
  };
  std::printf("\n%-24s %12s %12s %12s %12s\n", "query", "true",
              "Deep Sketch", "HyPer", "PostgreSQL");
  for (const char* sql : queries) {
    auto spec = sql::ParseAndBind(db, sql);
    if (!spec.ok()) {
      std::fprintf(stderr, "bind failed: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    auto t = truth.EstimateCardinality(*spec);
    auto s = sketch.EstimateSql(sql);
    auto h = hyper.EstimateCardinality(*spec);
    auto p = postgres.EstimateCardinality(*spec);
    if (!t.ok() || !s.ok() || !h.ok() || !p.ok()) {
      std::fprintf(stderr, "estimation failed\n");
      return 1;
    }
    std::string shortened(sql);
    shortened = shortened.substr(0, 21) + "...";
    std::printf("%-24s %12.0f %12.0f %12.0f %12.0f\n", shortened.c_str(), *t,
                *s, *h, *p);
  }

  std::printf(
      "\n(Queries 3 and 4 count the same thing. Filtering through the "
      "keyword\ndimension hides the keyword's popularity from the model — "
      "one row among\nthousands in the keyword sample; resolving the name "
      "to its key first, as\nthe demo backend does, restores the signal.)\n");

  // 4. Persist and reload: a sketch is a single self-contained file.
  const std::string path = "/tmp/quickstart.sketch";
  if (auto st = sketch.Save(path); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto reloaded = sketch::DeepSketch::Load(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  auto check = reloaded->EstimateSql(queries[1]);
  std::printf("\nReloaded sketch from %s; estimate check: %.0f\n",
              path.c_str(), check.value_or(-1));
  return 0;
}

// Closing the loop the paper motivates (§1): cardinality estimates are
// "the core ingredient to cost-based query optimizers". This example plugs
// three estimate sources — the trained Deep Sketch, the PostgreSQL-style
// baseline, and the ground truth — into the same left-deep C_out join-order
// optimizer and shows, for a few JOB-light queries, which join order each
// one picks and what that order actually costs.
//
// Run:  ./build/examples/optimizer_demo

#include <cstdio>
#include <string>

#include "ds/datagen/imdb.h"
#include "ds/est/postgres.h"
#include "ds/est/truth.h"
#include "ds/exec/optimizer.h"
#include "ds/sketch/deep_sketch.h"
#include "ds/util/string_util.h"
#include "ds/workload/joblight.h"

using namespace ds;

int main() {
  std::printf("Generating synthetic IMDb and training a sketch...\n");
  datagen::ImdbOptions imdb;
  imdb.num_titles = 8'000;
  auto catalog = datagen::GenerateImdb(imdb);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const storage::Catalog& db = **catalog;

  sketch::SketchConfig config;
  config.tables = {"title",      "movie_keyword", "movie_companies",
                   "cast_info",  "movie_info",    "movie_info_idx"};
  config.num_samples = 256;
  config.num_training_queries = 5'000;
  config.num_epochs = 20;
  config.seed = 3;
  auto sk = sketch::DeepSketch::Train(db, config);
  if (!sk.ok()) {
    std::fprintf(stderr, "%s\n", sk.status().ToString().c_str());
    return 1;
  }

  est::TrueCardinality truth(&db);
  est::PostgresEstimator postgres(&db);
  exec::JoinOrderOptimizer truth_opt(&db, &truth);
  exec::JoinOrderOptimizer sketch_opt(&db, &*sk);
  exec::JoinOrderOptimizer pg_opt(&db, &postgres);

  workload::JobLightOptions jl;
  jl.num_queries = 30;
  jl.seed = 404;
  auto workload = workload::MakeJobLight(db, jl);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  size_t shown = 0;
  for (const auto& spec : *workload) {
    if (spec.tables.size() < 4) continue;  // interesting orders only
    if (++shown > 3) break;
    std::printf("\nquery: %s\n", spec.ToSql().c_str());

    auto optimal = truth_opt.Optimize(spec);
    if (!optimal.ok() || optimal->cost <= 0) continue;
    struct Row {
      const char* who;
      exec::JoinOrderOptimizer* opt;
    };
    for (const auto& [who, opt] : {Row{"true cards ", &truth_opt},
                                   Row{"Deep Sketch", &sketch_opt},
                                   Row{"PostgreSQL ", &pg_opt}}) {
      auto plan = opt->Optimize(spec);
      if (!plan.ok()) continue;
      auto true_cost = truth_opt.CostOfOrder(spec, plan->order);
      if (!true_cost.ok()) continue;
      std::printf("  %s picks  %-60s  true C_out %10.0f  (%.2fx optimal)\n",
                  who, util::Join(plan->order, " > ").c_str(), *true_cost,
                  *true_cost / optimal->cost);
    }
  }
  std::printf(
      "\nBetter estimates put the most selective tables first; a plan "
      "chosen from\nmisestimates pays its true cost at execution time.\n");
  return 0;
}

// The paper's motivating example (§1): "a movie producer might be
// interested in the popularity of a certain keyword over time:
//
//   SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k
//   WHERE mk.movie_id=t.id AND mk.keyword_id=k.id
//   AND k.keyword='artificial-intelligence' AND t.production_year=?"
//
// This example trains a sketch over {title, movie_keyword, keyword},
// expands the '?' template from the sketch's column sample grouped into
// year buckets, and renders the estimated-vs-true series as an ASCII chart
// (the demo's Figure 2, in a terminal).
//
// Run:  ./build/examples/keyword_trends [keyword]

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "ds/datagen/imdb.h"
#include "ds/est/truth.h"
#include "ds/sketch/deep_sketch.h"
#include "ds/sketch/template.h"

using namespace ds;

int main(int argc, char** argv) {
  std::string keyword = argc > 1 ? argv[1] : "";

  std::printf("Generating synthetic IMDb and training a sketch...\n");
  datagen::ImdbOptions imdb;
  imdb.num_titles = 12'000;
  auto catalog = datagen::GenerateImdb(imdb);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const storage::Catalog& db = **catalog;

  sketch::SketchConfig config;
  config.tables = {"title", "movie_keyword", "keyword"};
  config.num_samples = 512;
  config.num_training_queries = 8'000;
  config.num_epochs = 25;
  config.seed = 17;
  auto sk = sketch::DeepSketch::Train(db, config);
  if (!sk.ok()) {
    std::fprintf(stderr, "%s\n", sk.status().ToString().c_str());
    return 1;
  }

  // Like the demo UI, offer the user a keyword the sketch actually knows:
  // default to the most movie-tagged keyword present in the sketch's
  // keyword sample (pass one explicitly as argv[1] to override). The UI's
  // SQL joins the keyword dimension so users can click a name; the backend
  // resolves the name to its key and counts from title x movie_keyword —
  // which is also the formulation whose sample bitmap carries the keyword's
  // popularity signal into the MSCN.
  const storage::Table* kw = db.GetTable("keyword").value();
  const storage::Column* kw_name = kw->GetColumn("keyword").value();
  const storage::Column* kw_id = kw->GetColumn("id").value();
  int64_t keyword_id = -1;
  if (keyword.empty()) {
    const est::TableSample* ks = sk->samples().Get("keyword").value();
    const storage::Column* kid = ks->rows->GetColumn("id").value();
    const storage::Column* kname = ks->rows->GetColumn("keyword").value();
    std::unordered_map<int64_t, size_t> freq;
    const storage::Table* mk = db.GetTable("movie_keyword").value();
    const storage::Column* col = mk->GetColumn("keyword_id").value();
    for (size_t r = 0; r < mk->num_rows(); ++r) freq[col->GetInt(r)]++;
    size_t best = 0;
    for (size_t r = 0; r < ks->rows->num_rows(); ++r) {
      if (freq[kid->GetInt(r)] > best) {
        best = freq[kid->GetInt(r)];
        keyword = kname->GetString(r);
        keyword_id = kid->GetInt(r);
      }
    }
  } else {
    for (size_t r = 0; r < kw->num_rows(); ++r) {
      if (kw_name->GetString(r) == keyword) keyword_id = kw_id->GetInt(r);
    }
    if (keyword_id < 0) {
      std::fprintf(stderr, "keyword '%s' not found\n", keyword.c_str());
      return 1;
    }
  }

  const std::string sql =
      "SELECT COUNT(*) FROM title t, movie_keyword mk "
      "WHERE mk.movie_id = t.id AND mk.keyword_id = " +
      std::to_string(keyword_id) + " AND t.production_year = ?";
  std::printf("\nKeyword: '%s'\nTemplate: %s\n", keyword.c_str(),
              sql.c_str());

  auto bound = sk->BindSql(sql);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  sketch::TemplateOptions topts;
  topts.grouping = sketch::TemplateOptions::Grouping::kBuckets;
  topts.num_buckets = 12;
  auto instances = sketch::InstantiateTemplate(*bound, sk->samples(), topts);
  if (!instances.ok()) {
    std::fprintf(stderr, "%s\n", instances.status().ToString().c_str());
    return 1;
  }

  est::TrueCardinality truth(&db);
  struct Point {
    std::string label;
    double truth;
    double estimate;
  };
  std::vector<Point> points;
  double max_val = 1;
  for (const auto& inst : *instances) {
    Point p;
    p.label = inst.label;
    p.truth = truth.EstimateCardinality(inst.spec).value_or(0);
    p.estimate = sk->EstimateCardinality(inst.spec).value_or(0);
    max_val = std::max({max_val, p.truth, p.estimate});
    points.push_back(std::move(p));
  }

  std::printf("\n%-22s %8s %8s  chart (#=true, o=Deep Sketch)\n", "years",
              "true", "sketch");
  const int width = 40;
  for (const auto& p : points) {
    int t = static_cast<int>(p.truth / max_val * width);
    int e = static_cast<int>(p.estimate / max_val * width);
    std::string bar(width + 1, ' ');
    for (int i = 0; i < t; ++i) bar[i] = '#';
    bar[std::min(e, width)] = 'o';
    std::printf("%-22s %8.0f %8.0f  |%s|\n", p.label.c_str(), p.truth,
                p.estimate, bar.c_str());
  }
  std::printf(
      "\nNote: the template drew its year values from the sketch's column "
      "sample;\nmany were never seen verbatim during training (footnote 1 "
      "of the paper).\n");
  return 0;
}

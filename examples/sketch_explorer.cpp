// sketch_explorer: a terminal version of the paper's demonstration UI (§3).
//
// The web demo lets users create sketches on TPC-H or IMDb, monitor
// training, and issue ad-hoc queries against trained sketches with true
// cardinalities and baseline estimates overlaid. This CLI offers the same
// loop:
//
//   show tables                 list the schema (the demo's clickable table
//                               pane)
//   show sketches               list trained sketches (SHOW SKETCHES)
//   create <name> t1,t2,...     define + train a sketch on a table subset
//   use <name>                  select a sketch
//   <SQL>                       estimate COUNT(*) SQL with the selected
//                               sketch, overlaying HyPer/PostgreSQL/truth
//   quit
//
// Run interactively:       ./build/examples/sketch_explorer imdb
// Run a scripted session:  echo "..." | ./build/examples/sketch_explorer tpch
//
// The dataset argument selects the synthetic IMDb (default) or TPC-H.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "ds/datagen/imdb.h"
#include "ds/datagen/tpch.h"
#include "ds/est/hyper.h"
#include "ds/est/postgres.h"
#include "ds/est/truth.h"
#include "ds/sketch/manager.h"
#include "ds/util/string_util.h"

using namespace ds;

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "imdb";

  std::unique_ptr<storage::Catalog> catalog;
  if (dataset == "imdb") {
    datagen::ImdbOptions opts;
    opts.num_titles = 10'000;
    catalog = datagen::GenerateImdb(opts).value();
  } else if (dataset == "tpch") {
    datagen::TpchOptions opts;
    opts.num_customers = 2'000;
    catalog = datagen::GenerateTpch(opts).value();
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (imdb|tpch)\n",
                 dataset.c_str());
    return 1;
  }
  const storage::Catalog& db = *catalog;

  const std::string dir = "/tmp/ds_sketches_" + dataset;
  std::filesystem::create_directories(dir);
  sketch::SketchManager manager(catalog.get(), dir);

  est::TrueCardinality truth(catalog.get());
  est::PostgresEstimator postgres(catalog.get());
  auto samples = est::SampleSet::Build(db, 256, 1234).value();
  est::HyperEstimator hyper(catalog.get(), &samples);

  std::string current;
  std::printf("deep sketch explorer — dataset: %s. Type 'help'.\n",
              dataset.c_str());
  std::string line;
  while (true) {
    std::printf("sketch> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string cmd(util::Trim(line));
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::printf(
          "  show tables | show sketches | create <name> <t1,t2,...> |\n"
          "  use <name> | SELECT COUNT(*) FROM ... | quit\n");
      continue;
    }
    if (cmd == "show tables") {
      for (const auto* table : db.tables()) {
        std::printf("  %-18s %8zu rows, %zu columns\n", table->name().c_str(),
                    table->num_rows(), table->num_columns());
      }
      continue;
    }
    if (cmd == "show sketches") {
      auto names = manager.ListSketches();
      if (names.empty()) std::printf("  (none — try 'create')\n");
      for (const auto& name : names) {
        std::printf("  %s%s\n", name.c_str(),
                    name == current ? "   [selected]" : "");
      }
      continue;
    }
    if (util::StartsWith(cmd, "create ")) {
      std::istringstream in(cmd.substr(7));
      std::string name, tables_csv;
      in >> name >> tables_csv;
      sketch::SketchConfig config;
      if (!tables_csv.empty()) config.tables = util::Split(tables_csv, ',');
      config.num_samples = 256;
      config.num_training_queries = 4'000;
      config.num_epochs = 20;
      sketch::TrainingMonitor monitor;
      monitor.on_labeling_progress = [](size_t done, size_t total) {
        if (done % 1000 == 0 || done == total) {
          std::printf("  labeling %zu/%zu\r", done, total);
          std::fflush(stdout);
        }
      };
      monitor.on_epoch = [](const mscn::EpochStats& e) {
        std::printf("  epoch %2zu/20: val mean q-error %.2f\n", e.epoch,
                    e.validation_mean_q);
      };
      auto created = manager.CreateSketch(name, config, &monitor);
      if (!created.ok()) {
        std::printf("  error: %s\n", created.status().ToString().c_str());
      } else {
        std::printf("  sketch '%s' trained and saved (%s)\n", name.c_str(),
                    util::HumanBytes((*created)->SerializedSize()).c_str());
        current = name;
      }
      continue;
    }
    if (util::StartsWith(cmd, "use ")) {
      std::string name(util::Trim(cmd.substr(4)));
      if (manager.GetSketch(name).ok()) {
        current = name;
        std::printf("  using '%s'\n", name.c_str());
      } else {
        std::printf("  no sketch '%s'\n", name.c_str());
      }
      continue;
    }

    // Anything else: treat as SQL, estimate with everything (the demo's
    // EXECUTE button).
    if (current.empty()) {
      std::printf("  select a sketch first ('create' or 'use')\n");
      continue;
    }
    auto sk = manager.GetSketch(current);
    auto estimate = (*sk)->EstimateSql(cmd);
    if (!estimate.ok()) {
      std::printf("  error: %s\n", estimate.status().ToString().c_str());
      continue;
    }
    auto spec = sql::ParseAndBind(db, cmd);
    double t = truth.EstimateCardinality(*spec).value_or(-1);
    double h = hyper.EstimateCardinality(*spec).value_or(-1);
    double p = postgres.EstimateCardinality(*spec).value_or(-1);
    std::printf("  true        %12.0f\n", t);
    std::printf("  Deep Sketch %12.0f   (q-error %.2f)\n", *estimate,
                util::QError(t, *estimate));
    std::printf("  HyPer       %12.0f   (q-error %.2f)\n", h,
                util::QError(t, h));
    std::printf("  PostgreSQL  %12.0f   (q-error %.2f)\n", p,
                util::QError(t, p));
  }
  std::printf("\nbye\n");
  return 0;
}

// The demo's second dataset: TPC-H (§1, §3). TPC-H data is by spec mostly
// uniform and independent — the easy contrast case where traditional
// estimators already do well and a Deep Sketch must at least match them.
// This example trains a sketch over the order-pipeline tables and compares
// all estimators on a handful of classic TPC-H-flavored counting queries.
//
// Run:  ./build/examples/tpch_preview

#include <cstdio>
#include <string>
#include <vector>

#include "ds/datagen/tpch.h"
#include "ds/est/hyper.h"
#include "ds/est/postgres.h"
#include "ds/est/truth.h"
#include "ds/sketch/deep_sketch.h"
#include "ds/util/stats.h"

using namespace ds;

int main() {
  std::printf("Generating synthetic TPC-H...\n");
  datagen::TpchOptions opts;
  opts.num_customers = 3'000;
  auto catalog = datagen::GenerateTpch(opts);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const storage::Catalog& db = **catalog;
  for (const auto* table : db.tables()) {
    std::printf("  %-10s %8zu rows\n", table->name().c_str(),
                table->num_rows());
  }

  sketch::SketchConfig config;
  config.tables = {"customer", "orders", "lineitem", "part", "supplier"};
  config.num_samples = 256;
  config.num_training_queries = 12'000;
  config.num_epochs = 30;
  config.seed = 5;
  std::printf("Training a sketch on the order pipeline...\n");
  auto sk = sketch::DeepSketch::Train(db, config);
  if (!sk.ok()) {
    std::fprintf(stderr, "%s\n", sk.status().ToString().c_str());
    return 1;
  }

  est::TrueCardinality truth(&db);
  est::PostgresEstimator postgres(&db);
  auto samples = est::SampleSet::Build(db, 256, 77).value();
  est::HyperEstimator hyper(&db, &samples);

  const std::vector<std::string> queries = {
      // Q1-flavored: recent lineitems.
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate > 2300",
      // Q3-flavored: building-segment customers' lineitems.
      "SELECT COUNT(*) FROM customer c, orders o, lineitem l "
      "WHERE o.o_custkey = c.c_custkey AND l.l_orderkey = o.o_orderkey "
      "AND c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 1000",
      // Q6-flavored: discounted small quantities.
      "SELECT COUNT(*) FROM lineitem "
      "WHERE l_quantity < 24 AND l_discount > 0.05",
      // Q12-flavored: ship-mode counts across the join.
      "SELECT COUNT(*) FROM orders o, lineitem l "
      "WHERE l.l_orderkey = o.o_orderkey AND l.l_shipmode = 'MAIL'",
      // Part-supplier flavored.
      "SELECT COUNT(*) FROM lineitem l, part p "
      "WHERE l.l_partkey = p.p_partkey AND p.p_size > 40",
  };

  std::printf("\n%10s %14s %10s %12s   query\n", "true", "Deep Sketch",
              "HyPer", "PostgreSQL");
  std::vector<double> qs, qh, qp;
  for (const auto& sql : queries) {
    auto spec = sql::ParseAndBind(db, sql);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    double t = truth.EstimateCardinality(*spec).value_or(-1);
    double s = sk->EstimateSql(sql).value_or(-1);
    double h = hyper.EstimateCardinality(*spec).value_or(-1);
    double p = postgres.EstimateCardinality(*spec).value_or(-1);
    std::printf("%10.0f %14.0f %10.0f %12.0f   %.48s...\n", t, s, h, p,
                sql.c_str());
    qs.push_back(util::QError(t, s));
    qh.push_back(util::QError(t, h));
    qp.push_back(util::QError(t, p));
  }
  std::printf("\nmean q-error: Deep Sketch %.2f | HyPer %.2f | PostgreSQL %.2f\n",
              util::Mean(qs), util::Mean(qh), util::Mean(qp));
  std::printf(
      "TPC-H is near-independent by construction, so all estimators are "
      "close —\nexactly the contrast to the correlated IMDb the demo "
      "intends.\n");
  return 0;
}

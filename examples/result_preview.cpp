// Result-size previewing (§1): "Often, rough estimates are sufficient to
// inform users whether executing a certain query would be worthwhile...
// Deep Sketches could be deployed in a web browser or within a cell phone
// to preview query results."
//
// This example simulates that deployment: a sketch is trained once on a
// "server" (with database access), persisted, and then reloaded by a
// "client" that has NO database — only the sketch file — and previews a
// batch of queries, deciding which would be worth executing. Wall-clock
// numbers contrast preview cost vs. execution cost.
//
// Run:  ./build/examples/result_preview

#include <cstdio>
#include <string>
#include <vector>

#include "ds/datagen/imdb.h"
#include "ds/exec/executor.h"
#include "ds/sketch/deep_sketch.h"
#include "ds/sql/binder.h"
#include "ds/util/string_util.h"
#include "ds/util/timer.h"

using namespace ds;

int main() {
  const std::string sketch_path = "/tmp/result_preview.sketch";

  // ---- "Server": train and persist a sketch -------------------------------
  datagen::ImdbOptions imdb;
  imdb.num_titles = 12'000;
  auto catalog = datagen::GenerateImdb(imdb);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const storage::Catalog& db = **catalog;
  {
    sketch::SketchConfig config;
    config.tables = {"title", "movie_keyword", "cast_info", "movie_info"};
    config.num_samples = 256;
    config.num_training_queries = 6'000;
    config.num_epochs = 20;
    config.seed = 23;
    std::printf("[server] training sketch...\n");
    auto sk = sketch::DeepSketch::Train(db, config);
    if (!sk.ok()) {
      std::fprintf(stderr, "%s\n", sk.status().ToString().c_str());
      return 1;
    }
    if (auto st = sk->Save(sketch_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("[server] shipped %s to the client (%s)\n",
                sketch_path.c_str(),
                util::HumanBytes(sk->SerializedSize()).c_str());
  }

  // ---- "Client": preview with the sketch file alone ------------------------
  auto client = sketch::DeepSketch::Load(sketch_path);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::string> queries = {
      "SELECT COUNT(*) FROM title WHERE production_year > 2010",
      "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id",
      "SELECT COUNT(*) FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id AND ci.role_id = 2 "
      "AND t.production_year > 2005",
      "SELECT COUNT(*) FROM title t, movie_keyword mk, movie_info mi "
      "WHERE mk.movie_id = t.id AND mi.movie_id = t.id "
      "AND t.kind_id = 7",
      "SELECT COUNT(*) FROM title t, movie_keyword mk "
      "WHERE mk.movie_id = t.id AND t.production_year = 1955",
  };

  const double kWorthwhileLimit = 50'000;  // rows the user wants to eyeball
  std::printf("\n[client] previewing %zu queries with the sketch only:\n\n",
              queries.size());
  std::printf("%-9s %12s %10s  %s\n", "preview", "estimate", "latency",
              "verdict");
  util::WallTimer total;
  for (const auto& sql : queries) {
    util::WallTimer timer;
    auto est = client->EstimateSql(sql);
    double ms = timer.ElapsedMillis();
    if (!est.ok()) {
      std::fprintf(stderr, "%s\n", est.status().ToString().c_str());
      return 1;
    }
    std::printf("%-9s %12.0f %8.2fms  %s\n", "",
                *est, ms,
                *est > kWorthwhileLimit ? "too big -- refine the query"
                                        : "worth executing");
  }
  std::printf("[client] all previews in %.1fms total\n", total.ElapsedMillis());

  // ---- Contrast: what executing everything would have cost -----------------
  exec::Executor executor(&db);
  util::WallTimer exec_timer;
  std::printf("\n[server] executing the same queries for comparison:\n");
  for (const auto& sql : queries) {
    auto spec = sql::ParseAndBind(db, sql).value();
    auto n = executor.Count(spec);
    std::printf("  true count %10llu   (%s)\n",
                static_cast<unsigned long long>(n.value_or(0)),
                sql.substr(0, 60).c_str());
  }
  std::printf("[server] execution took %.0fms vs %.1fms of previews\n",
              exec_timer.ElapsedMillis(), total.ElapsedMillis());
  return 0;
}
